"""Discrete-event workflow execution engine.

This is the repo's stand-in for "Pegasus WMS/HTCondor running on ExoGENI":
it executes one workflow run on an elastic pool of simulated worker
instances, invoking an :class:`~repro.engine.control.Autoscaler` every
control period (the MAPE cadence, paper §III-A) and applying its decisions
with the site's provisioning lag.

Determinism: all randomness flows from a single seed through labelled
sub-streams (:mod:`repro.util.rng`), and simultaneous events fire in
scheduling order, so a run is a pure function of
``(workflow, site, autoscaler, charging_unit, models, seed)``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.cloud.billing import BillingModel
from repro.cloud.faults import ChaosInjector, ChaosSpec
from repro.cloud.instance import Instance, InstanceState
from repro.cloud.pool import InstancePool
from repro.cloud.provisioner import Provisioner
from repro.cloud.site import CloudSite
from repro.dag.workflow import Workflow
from repro.engine.control import Autoscaler, Observation, ScalingDecision
from repro.engine.events import Event, EventKind, EventQueue
from repro.engine.faults import FaultModel, NoFaults
from repro.engine.master import FrameworkMaster, TaskExecState
from repro.engine.monitor import Monitor
from repro.engine.runtime import NominalRuntimeModel, TaskRuntimeModel
from repro.engine.scheduler import FifoScheduler
from repro.engine.transfer import DataTransferModel, NoTransferModel
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.records import (
    CloudFaultRecord,
    ControlTickRecord,
    InstanceEventRecord,
    RunMetaRecord,
    RunSummaryRecord,
    TaskAttemptRecord,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.rng import RngStream
from repro.util.validation import check_positive

__all__ = ["RunResult", "Simulation"]


def _make_validator(validate: object):
    """Normalize the ``validate=`` argument of the engines.

    ``None``/``False`` -> no validator (the zero-cost path); ``True`` ->
    a default raise-mode checker; anything else is assumed to be a
    checker instance and used as-is. The import is deferred so runs that
    never validate never load :mod:`repro.validate`.
    """
    if validate is None or validate is False:
        return None
    if validate is True:
        from repro.validate.checker import InvariantChecker

        return InvariantChecker()
    return validate


@dataclass
class RunResult:
    """Everything measured from one workflow run."""

    workflow_name: str
    autoscaler_name: str
    charging_unit: float
    #: completion time of the last task (simulation seconds)
    makespan: float
    #: False when the run hit ``max_time`` before finishing
    completed: bool
    #: total charging units billed (Fig 5's "resource cost")
    total_units: int
    #: total monetary cost (units x price)
    total_cost: float
    #: paid-but-unused instance seconds
    wasted_seconds: float
    #: busy slot-seconds / paid slot-seconds, in [0, 1]
    utilization: float
    #: largest number of simultaneously RUNNING instances
    peak_instances: int
    #: total instances ever launched
    instances_launched: int
    #: task attempts killed by pool shrinks
    restarts: int
    #: MAPE iterations executed
    ticks: int
    #: wall-clock seconds spent inside autoscaler.plan() (§IV-F overhead)
    controller_cpu_seconds: float
    #: autoscaler-reported state footprint in bytes (None if untracked)
    controller_state_bytes: int | None
    #: discrete events processed by the engine loop (perf accounting)
    events_processed: int
    #: (time, running instance count) at every pool change
    pool_timeline: list[tuple[float, int]]
    #: full task attempt records
    monitor: Monitor = field(repr=False)
    #: cloud-fault injection tallies by fault class (empty when chaos is
    #: disabled; see :mod:`repro.cloud.faults`)
    cloud_faults: dict[str, int] = field(default_factory=dict)

    @property
    def total_task_seconds(self) -> float:
        """Aggregate completed execution seconds (Table I's aggregate)."""
        return sum(
            a.execution_time or 0.0
            for a in self.monitor.all_attempts()
            if a.is_completed
        )


class Simulation:
    """One workflow run under one autoscaling policy.

    Parameters
    ----------
    workflow, site, autoscaler:
        What to run, where, and under which pool-sizing policy.
    charging_unit:
        Billing unit *u* in seconds.
    transfer_model, runtime_model:
        Ground-truth generators for transfers and execution times.
    controller_period:
        MAPE iteration period; defaults to the site's lag as the paper
        prescribes (§III-A).
    boost_k:
        First-*k* per-stage priority boost (paper: 5).
    seed:
        Root seed for all stochastic models.
    max_time:
        Safety horizon; the run is marked incomplete if it exceeds this.
    tracer:
        Structured trace destination (:mod:`repro.telemetry`). Defaults to
        the shared null tracer; every emission site is guarded by a single
        cached boolean, so untraced runs pay one attribute check per
        *potential* record, never record construction.
    metrics:
        Counter/gauge/histogram registry; defaults to the shared no-op
        registry with the same cached-boolean fast path.
    chaos:
        Cloud-fault injection spec (:mod:`repro.cloud.faults`). ``None``
        or a disabled spec leaves the run bit-identical to one with no
        chaos wiring at all: no chaos RNG sub-stream is derived (child
        streams are label-hashed, so the other streams are unaffected
        either way), no chaos events are scheduled, and every chaos call
        site is guarded by a single ``is not None`` check.
    validate:
        Runtime invariant checking (:mod:`repro.validate`). ``None`` or
        ``False`` (default) disables it with the same zero-cost contract
        as chaos — one ``is not None`` check per event, bit-identical
        results. ``True`` attaches a default raise-mode
        :class:`~repro.validate.checker.InvariantChecker`; an explicit
        checker instance is used as-is (pass ``mode="collect"`` to
        gather violations instead of stopping at the first).
    """

    def __init__(
        self,
        workflow: Workflow,
        site: CloudSite,
        autoscaler: Autoscaler,
        charging_unit: float,
        *,
        transfer_model: DataTransferModel | None = None,
        runtime_model: TaskRuntimeModel | None = None,
        fault_model: FaultModel | None = None,
        controller_period: float | None = None,
        boost_k: int = 5,
        scheduler: FifoScheduler | None = None,
        launch_jitter: float = 0.0,
        seed: int = 0,
        max_time: float = 1e8,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        chaos: ChaosSpec | None = None,
        validate: object = None,
    ) -> None:
        check_positive("charging_unit", charging_unit)
        check_positive("max_time", max_time)
        self.workflow = workflow
        self.site = site
        self.autoscaler = autoscaler
        self.billing = BillingModel(charging_unit)
        self.transfer_model = transfer_model or NoTransferModel()
        self.runtime_model = runtime_model or NominalRuntimeModel()
        self.fault_model = fault_model or NoFaults()
        self.period = controller_period if controller_period is not None else site.lag
        check_positive("controller_period", self.period)
        # The paper's lag is "the *maximum* delay to launch or release an
        # instance" (§III-A); with jitter j, an ordered instance becomes
        # usable after lag * (1 - j*U[0,1)) — up to j earlier than the
        # worst case the controller plans around.
        if not 0.0 <= launch_jitter <= 1.0:
            raise ValueError(
                f"launch_jitter must be in [0, 1], got {launch_jitter!r}"
            )
        self.launch_jitter = launch_jitter
        self.max_time = max_time
        self._seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self.tracer.enabled
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._metrics_on = self.metrics.enabled

        rng = RngStream(seed=seed, label="simulation")
        self._rng_transfer = rng.child("transfer").generator()
        self._rng_runtime = rng.child("runtime").generator()
        self._rng_faults = rng.child("faults").generator()
        self._rng_launch = rng.child("launch").generator()

        # Cloud-fault injection: the injector exists only when a fault
        # class is actually enabled, so `self._chaos_injector is None` is
        # the zero-cost disabled path (mirroring the `self._trace` guard).
        self.chaos = chaos
        if chaos is not None and chaos.enabled:
            self._chaos_injector: ChaosInjector | None = ChaosInjector(
                chaos, rng.child("chaos").generator()
            )
        else:
            self._chaos_injector = None
        # Invariant checking mirrors the chaos contract: the checker
        # exists only when requested, so `self.validator is None` is the
        # zero-cost disabled path (lazy import keeps repro.validate out
        # of undecorated runs entirely).
        self.validator = _make_validator(validate)
        #: fault-class -> occurrence count (stays empty without chaos)
        self._cloud_faults: dict[str, int] = {}
        #: pending-instance id -> provisioning attempt number, for
        #: launches that will come back failed
        self._provision_attempts: dict[str, int] = {}

        self.pool = InstancePool(site.itype, self.billing)
        self.provisioner = Provisioner(site, self.pool)
        self.master = FrameworkMaster(workflow)
        self.monitor = Monitor()
        # A custom scheduler models §III-D's dispatch-order drift; the
        # default is the FIFO order the steering policy assumes.
        self.scheduler = scheduler if scheduler is not None else FifoScheduler(
            boost_k=boost_k
        )
        self.events = EventQueue()

        self._started = False
        self._now = 0.0
        self._events_processed = 0
        self._draining: set[str] = set()
        self._pending_task_event: dict[str, Event] = {}
        self._timeline: list[tuple[float, int]] = []
        self._last_completion = 0.0
        self._ticks = 0
        self._controller_seconds = 0.0
        self._last_tick_time = 0.0
        #: task id -> when it (re)entered the ready queue; populated only
        #: when tracing (feeds TaskAttemptRecord.queue_wait)
        self._ready_at: dict[str, float] = {}
        #: start of a monitoring window whose records were blacked out
        #: and are still awaiting delivery (delayed-records mode only)
        self._observe_from: float | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        checkpoint_every: int | None = None,
        checkpoint_path: object = None,
        stop_after_checkpoint: bool = False,
    ) -> RunResult | None:
        """Execute the workflow to completion and return measurements.

        ``checkpoint_every=N`` serializes the engine to
        ``checkpoint_path`` at every N-th controller tick (see
        :mod:`repro.checkpoint`); ``stop_after_checkpoint=True`` returns
        ``None`` right after the first checkpoint. A restored simulation
        continues where it stopped and finishes byte-identical to an
        uninterrupted run.
        """
        if checkpoint_every is not None:
            check_positive("checkpoint_every", checkpoint_every)
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires a checkpoint_path")
            from repro.checkpoint import save_checkpoint
        validator = self.validator
        if not self._started:
            self._started = True
            self._bootstrap()
            if validator is not None:
                validator.begin_run(self)
        completed = True
        while not self.master.is_done():
            if not self.events:
                raise RuntimeError(
                    "event queue drained before workflow completion "
                    f"(at t={self._now}); the pool can no longer make progress"
                )
            event = self.events.pop()
            if event.time > self.max_time:
                completed = False
                break
            self._now = event.time
            self._events_processed += 1
            self._handle(event)
            if validator is not None:
                validator.after_event(self, event)
            if (
                checkpoint_every is not None
                and event.kind is EventKind.CONTROLLER_TICK
                and self._ticks > 0
                and self._ticks % checkpoint_every == 0
                and not self.master.is_done()
            ):
                save_checkpoint(self, checkpoint_path)
                if stop_after_checkpoint:
                    return None
        result = self._finalize(completed)
        if validator is not None:
            validator.check_final(self, result)
        return result

    # ------------------------------------------------------------------
    # setup / teardown
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        if self._trace:
            self.tracer.emit(
                RunMetaRecord(
                    workflow=self.workflow.name,
                    policy=self.autoscaler.name,
                    charging_unit=self.billing.charging_unit,
                    seed=self._seed,
                    site=self.site.name,
                    max_instances=self.site.max_instances,
                    lag=self.site.lag,
                    period=self.period,
                    n_tasks=len(self.workflow),
                    n_stages=len(self.workflow.stages),
                    slots_per_instance=self.site.itype.slots,
                    runtime_model=getattr(
                        self.runtime_model, "name", type(self.runtime_model).__name__
                    ),
                )
            )
        initial = self.autoscaler.initial_pool_size(self.site)
        initial = max(self.site.min_instances, min(initial, self.site.max_instances))
        for _ in range(initial):
            instance = self.pool.create(now=0.0)
            instance.mark_running(0.0)
            if self._chaos_injector is not None:
                self._chaos_instance_started(instance)
            if self._trace:
                iid = instance.instance_id
                self.tracer.emit(
                    InstanceEventRecord(now=0.0, instance_id=iid, event="requested")
                )
                self.tracer.emit(
                    InstanceEventRecord(now=0.0, instance_id=iid, event="provisioned")
                )
        if self._metrics_on:
            self.metrics.counter("instance.launched").inc(initial)
        self._record_pool_change(0.0)
        for task_id in self.master.initially_ready():
            if self._trace:
                self._ready_at[task_id] = 0.0
            self.scheduler.push(task_id, self.workflow.stage_of[task_id])
        self._dispatch()
        self.events.push(self.period, EventKind.CONTROLLER_TICK)

    def _finalize(self, completed: bool) -> RunResult:
        makespan = self._last_completion if completed else self._now
        # Tear down whatever is still up; the run is over.
        for instance in self.pool:
            if instance.state is InstanceState.RUNNING:
                for task_id in sorted(instance.occupants):
                    # Only possible on an incomplete (timed-out) run.
                    self.monitor.record_kill(task_id, makespan)
                    if self._trace:
                        self._emit_attempt(task_id, "killed", makespan)
                    instance.release(task_id, makespan)
                end = max(makespan, instance.started_at or 0.0)
                instance.mark_terminated(end)
                if self._trace:
                    self._emit_instance_end(instance, end, "terminated")
            elif instance.state is InstanceState.PENDING:
                # Never became usable; never billed.
                instance.cancel_pending()
                if self._trace:
                    self.tracer.emit(
                        InstanceEventRecord(
                            now=makespan,
                            instance_id=instance.instance_id,
                            event="cancelled",
                        )
                    )

        total_units = self.pool.total_units(makespan)
        busy = sum(
            a.occupancy_elapsed(makespan) for a in self.monitor.all_attempts()
        )
        paid_slot_seconds = sum(
            self.billing.units_charged(i, makespan)
            * self.billing.charging_unit
            * i.itype.slots
            for i in self.pool
        )
        utilization = busy / paid_slot_seconds if paid_slot_seconds > 0 else 0.0
        result = RunResult(
            workflow_name=self.workflow.name,
            autoscaler_name=self.autoscaler.name,
            charging_unit=self.billing.charging_unit,
            makespan=makespan,
            completed=completed,
            total_units=total_units,
            total_cost=self.pool.total_cost(makespan),
            wasted_seconds=self.pool.total_wasted_time(makespan),
            utilization=min(1.0, utilization),
            peak_instances=max((c for _, c in self._timeline), default=0),
            instances_launched=len(self.pool),
            restarts=self.monitor.total_restarts(),
            ticks=self._ticks,
            controller_cpu_seconds=self._controller_seconds,
            controller_state_bytes=self.autoscaler.state_size_bytes(),
            events_processed=self._events_processed,
            pool_timeline=list(self._timeline),
            monitor=self.monitor,
            cloud_faults=dict(self._cloud_faults),
        )
        if self._trace:
            self.tracer.emit(
                RunSummaryRecord(
                    makespan=result.makespan,
                    completed=result.completed,
                    total_units=result.total_units,
                    total_cost=result.total_cost,
                    wasted_seconds=result.wasted_seconds,
                    utilization=result.utilization,
                    peak_instances=result.peak_instances,
                    instances_launched=result.instances_launched,
                    restarts=result.restarts,
                    ticks=result.ticks,
                )
            )
        return result

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------
    def _handle(self, event: Event) -> None:
        if event.kind is EventKind.INSTANCE_READY:
            self._on_instance_ready(event.payload)
        elif event.kind is EventKind.INSTANCE_TERMINATE:
            self._on_instance_terminate(event.payload)
        elif event.kind is EventKind.STAGE_IN_DONE:
            self._on_stage_in_done(event.payload)
        elif event.kind is EventKind.EXEC_DONE:
            self._on_exec_done(event.payload)
        elif event.kind is EventKind.STAGE_OUT_DONE:
            self._on_stage_out_done(event.payload)
        elif event.kind is EventKind.TASK_FAILED:
            self._on_task_failed(event.payload)
        elif event.kind is EventKind.CONTROLLER_TICK:
            self._on_controller_tick()
        elif event.kind is EventKind.INSTANCE_REVOKED:
            self._on_instance_revoked(event.payload)
        elif event.kind is EventKind.PROVISION_FAILED:
            self._on_provision_failed(event.payload)
        elif event.kind is EventKind.PROVISION_RETRY:
            self._on_provision_retry(event.payload)
        else:  # pragma: no cover - exhaustive enum
            raise RuntimeError(f"unknown event kind {event.kind}")

    def _on_instance_ready(self, instance_id: str) -> None:
        instance = self.pool.get(instance_id)
        instance.mark_running(self._now)
        if self._chaos_injector is not None:
            self._chaos_instance_started(instance)
        if self._trace:
            self.tracer.emit(
                InstanceEventRecord(
                    now=self._now, instance_id=instance_id, event="provisioned"
                )
            )
        self._record_pool_change(self._now)
        self._dispatch()

    def _on_instance_terminate(self, instance_id: str) -> None:
        instance = self.pool.get(instance_id)
        for task_id in sorted(instance.occupants):
            pending = self._pending_task_event.pop(task_id, None)
            if pending is not None:
                self.events.cancel(pending)
            self.monitor.record_kill(task_id, self._now)
            if self._trace:
                self._emit_attempt(task_id, "killed", self._now)
                self._ready_at[task_id] = self._now
            self.master.mark_killed(task_id)
            self.scheduler.push(
                task_id, self.workflow.stage_of[task_id], requeue=True
            )
            # release (not bulk-clear) so the pool's placement and
            # free-slot indexes stay consistent
            instance.release(task_id, self._now)
        instance.mark_terminated(self._now)
        if self._chaos_injector is not None:
            # a planned release retracts any not-yet-fired revocation
            self.events.cancel_for_payload(
                instance_id, kind=EventKind.INSTANCE_REVOKED
            )
        if self._trace:
            self._emit_instance_end(instance, self._now, "terminated")
        self._draining.discard(instance_id)
        self._record_pool_change(self._now)
        self._dispatch()

    # ------------------------------------------------------------------
    # cloud-fault handlers (reachable only with an enabled ChaosSpec)
    # ------------------------------------------------------------------
    def _chaos_instance_started(self, instance: Instance) -> None:
        """Per-instance chaos draws, made once when it becomes RUNNING.

        Draw order is fixed (straggler roll, then revocation sample) so a
        run is a pure function of ``(seed, spec)``.
        """
        injector = self._chaos_injector
        assert injector is not None
        factor = injector.straggler_factor()
        iid = instance.instance_id
        if factor != 1.0:
            instance.slowdown = factor
            self._count_fault("stragglers")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="straggler",
                        instance_id=iid,
                        slowdown=factor,
                    )
                )
        delay = injector.revocation_delay()
        if delay is not None:
            # The provider will preempt this instance unless the run (or
            # a planned release) gets there first.
            self.events.push(
                self._now + delay, EventKind.INSTANCE_REVOKED, iid
            )

    def _on_instance_revoked(self, instance_id: str) -> None:
        """The provider preempts ``instance_id`` (spot-style revocation).

        Mirrors a planned termination — occupants are killed and requeued
        — except the instance had no say: any scheduled release is
        retracted, the instance is flagged ``revoked``, and billing stops
        at the revocation boundary (``mark_terminated(now)`` caps the
        billable uptime).
        """
        instance = self.pool.get(instance_id)
        if instance.state is not InstanceState.RUNNING:
            return  # defensive: planned releases cancel revocation events
        killed = 0
        lost_occupancy = 0.0
        for task_id in sorted(instance.occupants):
            pending = self._pending_task_event.pop(task_id, None)
            if pending is not None:
                self.events.cancel(pending)
            lost_occupancy += self.monitor.current_attempt(
                task_id
            ).occupancy_elapsed(self._now)
            self.monitor.record_kill(task_id, self._now)
            if self._trace:
                self._emit_attempt(task_id, "killed", self._now)
                self._ready_at[task_id] = self._now
            self.master.mark_killed(task_id)
            self.scheduler.push(
                task_id, self.workflow.stage_of[task_id], requeue=True
            )
            instance.release(task_id, self._now)
            killed += 1
        if instance_id in self._draining:
            self.events.cancel_for_payload(
                instance_id, kind=EventKind.INSTANCE_TERMINATE
            )
            self._draining.discard(instance_id)
        instance.revoked = True
        instance.mark_terminated(self._now)
        self._count_fault("revocations")
        if killed:
            self._count_fault("revocation_task_kills", killed)
        if self._metrics_on:
            self.metrics.counter("cloud.revocations").inc()
        if self._trace:
            self._emit_instance_end(instance, self._now, "revoked")
            _, _, _, _, wasted = self.pool.instance_utilization(
                instance, self._now
            )
            self.tracer.emit(
                CloudFaultRecord(
                    now=self._now,
                    fault="revocation",
                    instance_id=instance_id,
                    tasks_killed=killed,
                    wasted_seconds=wasted,
                    lost_occupancy=lost_occupancy,
                )
            )
        self._record_pool_change(self._now)
        self._dispatch()

    def _on_provision_failed(self, instance_id: str) -> None:
        """An ordered launch came back failed after its lag.

        The pending instance is cancelled (never billed) and, within the
        retry budget, a replacement is ordered after exponential backoff.
        """
        injector = self._chaos_injector
        assert injector is not None
        attempt = self._provision_attempts.pop(instance_id, 1)
        self.pool.get(instance_id).cancel_pending()
        self._count_fault("provision_failures")
        if self._trace:
            self.tracer.emit(
                InstanceEventRecord(
                    now=self._now, instance_id=instance_id, event="cancelled"
                )
            )
            self.tracer.emit(
                CloudFaultRecord(
                    now=self._now,
                    fault="provision_failure",
                    instance_id=instance_id,
                    attempt=attempt,
                )
            )
        retry = injector.spec.retry
        if attempt <= retry.max_retries:
            backoff = retry.delay(attempt)
            self._count_fault("provision_retries")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="provision_retry",
                        instance_id=instance_id,
                        attempt=attempt,
                        backoff=backoff,
                    )
                )
            self.events.push(
                self._now + backoff, EventKind.PROVISION_RETRY, attempt + 1
            )
        else:
            self._count_fault("provision_abandoned")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="provision_abandoned",
                        instance_id=instance_id,
                        attempt=attempt,
                    )
                )

    def _on_provision_retry(self, attempt: int) -> None:
        """Backoff elapsed: re-issue one launch as attempt ``attempt``."""
        orders = self.provisioner.order_launches(1, self._now)
        if not orders:
            # The site cap (or a competing MAPE grow) absorbed the slot;
            # the controller will re-plan capacity on a later tick.
            self._count_fault("provision_retries_dropped")
            return
        if self._metrics_on:
            self.metrics.counter("instance.launched").inc()
        self._issue_launch(orders[0], attempt=attempt)

    def _count_fault(self, key: str, n: int = 1) -> None:
        self._cloud_faults[key] = self._cloud_faults.get(key, 0) + n

    def _on_stage_in_done(self, task_id: str) -> None:
        self.master.mark_executing(task_id)
        self.monitor.record_exec_start(task_id, self._now)
        instance = self.pool.instance_of_task(task_id)
        assert instance is not None, f"executing task {task_id} has no instance"
        task = self.workflow.task(task_id)
        attempt = self.master.attempts(task_id)
        duration = self.runtime_model.execution_time(
            task, instance, attempt, self._rng_runtime
        )
        if self._chaos_injector is not None and instance.slowdown != 1.0:
            # Straggler stretch applied outside the runtime model so the
            # model's RNG draw sequence is identical with chaos off; the
            # fault model below sees the stretched (real) duration.
            duration *= instance.slowdown
        failure = self.fault_model.failure_offset(
            task, instance, attempt, duration, self._rng_faults
        )
        if failure is not None and failure < duration:
            self._pending_task_event[task_id] = self.events.push(
                self._now + failure, EventKind.TASK_FAILED, task_id
            )
        else:
            self._pending_task_event[task_id] = self.events.push(
                self._now + duration, EventKind.EXEC_DONE, task_id
            )

    def _on_exec_done(self, task_id: str) -> None:
        self.master.mark_staging_out(task_id)
        self.monitor.record_exec_end(task_id, self._now)
        duration = self.transfer_model.stage_out_time(
            self.workflow.task(task_id), self._rng_transfer
        )
        self._pending_task_event[task_id] = self.events.push(
            self._now + duration, EventKind.STAGE_OUT_DONE, task_id
        )

    def _on_stage_out_done(self, task_id: str) -> None:
        self._pending_task_event.pop(task_id, None)
        self.monitor.record_complete(task_id, self._now)
        if self._trace:
            self._emit_attempt(task_id, "completed", self._now)
        if self._metrics_on:
            attempt = self.monitor.current_attempt(task_id)
            self.metrics.counter("task.completed").inc()
            if attempt.execution_time is not None:
                self.metrics.histogram("task.runtime_seconds").observe(
                    attempt.execution_time
                )
        instance = self.pool.instance_of_task(task_id)
        assert instance is not None, f"completing task {task_id} has no instance"
        instance.release(task_id, self._now)
        self._last_completion = self._now
        for child in self.master.mark_completed(task_id):
            if self._trace:
                self._ready_at[child] = self._now
            self.scheduler.push(child, self.workflow.stage_of[child])
        self._dispatch()

    def _on_task_failed(self, task_id: str) -> None:
        """An attempt died mid-execution: the framework resubmits it."""
        self._pending_task_event.pop(task_id, None)
        instance = self.pool.instance_of_task(task_id)
        assert instance is not None, f"failed task {task_id} has no instance"
        self.monitor.record_kill(task_id, self._now, failed=True)
        if self._trace:
            self._emit_attempt(task_id, "failed", self._now)
            self._ready_at[task_id] = self._now
        self.master.mark_killed(task_id)
        instance.release(task_id, self._now)
        self.scheduler.push(task_id, self.workflow.stage_of[task_id], requeue=True)
        self._dispatch()

    def _on_controller_tick(self) -> None:
        if self.master.is_done():
            return
        blackout = False
        window_start = self._last_tick_time
        if self._chaos_injector is not None:
            blackout = self._chaos_injector.blackout()
            if blackout:
                self._count_fault("blackouts")
                if self._trace:
                    self.tracer.emit(
                        CloudFaultRecord(now=self._now, fault="monitor_blackout")
                    )
                # Delayed-records mode remembers where the starved window
                # began so the next clear tick can observe all of it at
                # once; dropped-records mode remembers nothing — those
                # windows are simply never offered to the predictor.
                if (
                    self._observe_from is None
                    and not self._chaos_injector.spec.blackout_drops
                ):
                    self._observe_from = self._last_tick_time
            elif self._observe_from is not None:
                window_start = self._observe_from
                self._observe_from = None
        observation = Observation(
            now=self._now,
            window_start=window_start,
            workflow=self.workflow,
            master=self.master,
            monitor=self.monitor,
            pool=self.pool,
            billing=self.billing,
            site=self.site,
            queued_task_ids=self.scheduler.snapshot(),
            draining_ids=frozenset(self._draining),
            monitor_blackout=blackout,
        )
        pool_before = self.pool.active_size() - len(self._draining)
        started = _time.perf_counter()
        decision = self.autoscaler.plan(observation)
        elapsed = _time.perf_counter() - started
        self._controller_seconds += elapsed
        self._ticks += 1
        self._last_tick_time = self._now
        terminated = self._apply_decision(decision)
        if self._trace:
            self._emit_tick(decision.launch, terminated, pool_before)
        if self._metrics_on:
            self.metrics.histogram("controller.plan_seconds").observe(elapsed)
            self.metrics.gauge("pool.running").set(self.pool.running_count())
        self.events.push(self._now + self.period, EventKind.CONTROLLER_TICK)

    # ------------------------------------------------------------------
    # decision application
    # ------------------------------------------------------------------
    def _apply_decision(self, decision: ScalingDecision) -> int:
        """Apply launches/terminations; returns terminations accepted.

        The count can be smaller than ``len(decision.terminations)`` —
        orders for draining/terminated instances or below the site floor
        are skipped — so telemetry reports what actually happened.
        """
        if decision.launch > 0:
            if self._metrics_on:
                self.metrics.counter("instance.launched").inc(decision.launch)
            for order in self.provisioner.order_launches(decision.launch, self._now):
                self._issue_launch(order)
        applied = 0
        remaining = self.pool.active_size() - len(self._draining)
        for order in decision.terminations:
            if order.instance_id in self._draining:
                continue  # already scheduled for release
            instance = self.pool.get(order.instance_id)
            if instance.state is not InstanceState.RUNNING:
                continue
            if remaining <= self.site.min_instances:
                break
            at = max(order.at, self._now)
            self._draining.add(order.instance_id)
            self.events.push(at, EventKind.INSTANCE_TERMINATE, order.instance_id)
            remaining -= 1
            applied += 1
        return applied

    def _issue_launch(self, order, attempt: int = 1) -> None:
        """Schedule the arrival of one ordered launch.

        With chaos enabled the order is subjected to a provisioning
        outcome roll: it may come back failed after its lag (entering the
        retry/backoff path) or arrive late by the timeout factor.
        ``attempt`` numbers the order within a retry chain (1 = first
        try).
        """
        ready_at = order.ready_at
        if self.launch_jitter > 0.0:
            lag = order.ready_at - self._now
            ready_at = self._now + lag * (
                1.0 - self.launch_jitter * float(self._rng_launch.random())
            )
        iid = order.instance.instance_id
        if self._trace:
            self.tracer.emit(
                InstanceEventRecord(
                    now=self._now, instance_id=iid, event="requested"
                )
            )
        injector = self._chaos_injector
        if injector is None:
            self.events.push(ready_at, EventKind.INSTANCE_READY, iid)
            return
        outcome = injector.provision_outcome(self._now)
        if outcome == "fail":
            # The failure is only *detected* once the lag has elapsed —
            # a real site reports a launch error, not instant rejection.
            self._provision_attempts[iid] = attempt
            self.events.push(ready_at, EventKind.PROVISION_FAILED, iid)
        elif outcome == "timeout":
            factor = injector.spec.provision_timeout_factor
            delayed = self._now + (ready_at - self._now) * factor
            self._count_fault("provision_timeouts")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="provision_timeout",
                        instance_id=iid,
                        attempt=attempt,
                    )
                )
            self.events.push(delayed, EventKind.INSTANCE_READY, iid)
        else:
            self.events.push(ready_at, EventKind.INSTANCE_READY, iid)

    # ------------------------------------------------------------------
    # task dispatch
    # ------------------------------------------------------------------
    def _dispatchable_instance(self) -> Instance | None:
        """Pick the fullest running, non-draining instance with a free slot.

        Packing tightly (fewest free slots first) keeps marginal instances
        empty so the steering policy can release them cheaply. Served from
        the pool's incrementally maintained free-slot index rather than a
        scan over every instance ever launched.
        """
        return self.pool.best_dispatchable(self._draining)

    def _dispatch(self) -> None:
        while len(self.scheduler) > 0:
            instance = self._dispatchable_instance()
            if instance is None:
                return
            task_id = self.scheduler.pop()
            assert task_id is not None
            task = self.workflow.task(task_id)
            instance.assign(task_id, self._now)
            self.master.mark_dispatched(task_id)
            self.monitor.record_dispatch(
                task_id,
                self.workflow.stage_of[task_id],
                instance.instance_id,
                self._now,
                task.input_size,
                task.output_size,
                ready_time=self._ready_at.pop(task_id, None) if self._trace else None,
            )
            duration = self._stage_in_duration(task, instance)
            self._pending_task_event[task_id] = self.events.push(
                self._now + duration, EventKind.STAGE_IN_DONE, task_id
            )

    def _stage_in_duration(self, task, instance: Instance) -> float:
        """Sample the stage-in time, with placement awareness when the
        transfer model supports it (see LocalityTransferModel)."""
        placed = getattr(self.transfer_model, "stage_in_time_placed", None)
        if placed is None:
            return self.transfer_model.stage_in_time(task, self._rng_transfer)
        return placed(
            task,
            self._local_input_fraction(task, instance),
            self._rng_transfer,
        )

    def _local_input_fraction(self, task, instance: Instance) -> float:
        """Fraction of input bytes produced on ``instance`` by parents."""
        parents = self.workflow.parents(task.task_id)
        if not parents:
            return 0.0
        total = 0.0
        local = 0.0
        for parent_id in parents:
            parent = self.workflow.task(parent_id)
            total += parent.output_size
            attempts = self.monitor.attempts(parent_id)
            final = next((a for a in reversed(attempts) if a.is_completed), None)
            if final is not None and final.instance_id == instance.instance_id:
                local += parent.output_size
        if total <= 0.0:
            return 0.0
        return local / total

    # ------------------------------------------------------------------
    # trace emission (call sites are guarded by ``self._trace``)
    # ------------------------------------------------------------------
    def _emit_attempt(self, task_id: str, outcome: str, now: float) -> None:
        """Emit the closing record for a task attempt.

        Called after the monitor closed the attempt (complete/kill), so
        the derived timings below are final.
        """
        attempt = self.monitor.current_attempt(task_id)
        self.tracer.emit(
            TaskAttemptRecord(
                now=now,
                task_id=task_id,
                stage_id=attempt.stage_id,
                attempt=attempt.attempt,
                instance_id=attempt.instance_id,
                outcome=outcome,
                queue_wait=attempt.queue_wait,
                stage_in=attempt.stage_in_time,
                runtime=attempt.execution_time,
                stage_out=attempt.stage_out_time,
                occupancy=attempt.occupancy_elapsed(now),
                input_size=attempt.input_size,
            )
        )

    def _emit_instance_end(self, instance: Instance, now: float, event: str) -> None:
        """Emit a terminal instance event with its final billing summary."""
        units, paid, busy, idle, wasted = self.pool.instance_utilization(
            instance, now
        )
        self.tracer.emit(
            InstanceEventRecord(
                now=now,
                instance_id=instance.instance_id,
                event=event,
                units_charged=units,
                paid_seconds=paid,
                busy_slot_seconds=busy,
                idle_fraction=idle,
                wasted_seconds=wasted,
            )
        )

    def _emit_tick(self, launched: int, terminated: int, pool_before: int) -> None:
        """Emit the per-tick controller record (tick already applied)."""
        counts = self.master.state_counts()
        in_flight = sum(counts[s] for s in TaskExecState if s.occupies_slot)
        branch = "grow" if launched > 0 else ("shrink" if terminated > 0 else "hold")
        extra = self.autoscaler.tick_telemetry()
        controller_detail: dict = {}
        if extra is not None:
            controller_detail = dict(
                target_pool=extra.target_pool,
                q_task=extra.q_task,
                q_remaining=extra.q_remaining,
                transfer_estimate=extra.transfer_estimate,
                stage_predictions=extra.stage_predictions,
            )
        self.tracer.emit(
            ControlTickRecord(
                tick=self._ticks - 1,
                now=self._now,
                pool_before=pool_before,
                pool_after=self.pool.active_size() - len(self._draining),
                launched=launched,
                terminated=terminated,
                branch=branch,
                ready_tasks=counts[TaskExecState.READY],
                in_flight_tasks=in_flight,
                completed_tasks=counts[TaskExecState.COMPLETED],
                **controller_detail,
            )
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _record_pool_change(self, now: float) -> None:
        count = self.pool.running_count()
        if self._timeline and self._timeline[-1][0] == now:
            self._timeline[-1] = (now, count)
        else:
            self._timeline.append((now, count))
