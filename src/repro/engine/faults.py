"""Task fault injection.

Paper §II-C notes frameworks monitor task lifecycles "for fault
tolerance"; on real clouds tasks die mid-execution (preemptions, node
failures, application crashes) and the framework resubmits them. Fault
models let tests and experiments inject such failures: a failed attempt
consumes slot occupancy (visible to WIRE as a killed attempt and as
wasted work), then the task is requeued like a policy-restart.

WIRE itself needs no changes — its predictor only learns from completed
attempts, and its conservative estimates absorb the extra load — which is
exactly what the robustness tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.cloud.instance import Instance
from repro.dag.task import Task
from repro.util.validation import check_in_range

__all__ = ["FaultModel", "NoFaults", "RandomFaults"]


class FaultModel(Protocol):
    """Decides whether (and when) a task attempt fails mid-execution."""

    def failure_offset(
        self,
        task: Task,
        instance: Instance,
        attempt: int,
        execution_time: float,
        rng: np.random.Generator,
    ) -> float | None:
        """Seconds into execution at which the attempt dies, or None.

        A returned offset must be < ``execution_time``; the engine treats
        anything >= as success.
        """
        ...


@dataclass(frozen=True)
class NoFaults:
    """The default: attempts never fail."""

    def failure_offset(
        self,
        task: Task,
        instance: Instance,
        attempt: int,
        execution_time: float,
        rng: np.random.Generator,
    ) -> float | None:
        return None


@dataclass(frozen=True)
class RandomFaults:
    """Bernoulli failures at a uniform point of the execution.

    Each attempt independently fails with ``probability``; the failure
    strikes at a uniformly random fraction of the attempt's execution
    time. ``max_attempt`` caps injection (attempts beyond it always
    succeed), guaranteeing runs terminate; real frameworks use similar
    retry policies.
    """

    probability: float = 0.05
    max_attempt: int = 5

    def __post_init__(self) -> None:
        check_in_range("probability", self.probability, 0.0, 1.0)
        if not isinstance(self.max_attempt, int) or self.max_attempt < 1:
            raise ValueError(
                f"max_attempt must be an int >= 1, got {self.max_attempt!r}"
            )

    def failure_offset(
        self,
        task: Task,
        instance: Instance,
        attempt: int,
        execution_time: float,
        rng: np.random.Generator,
    ) -> float | None:
        if attempt > self.max_attempt:
            return None
        if execution_time <= 0.0:
            return None
        if rng.random() >= self.probability:
            return None
        return float(rng.uniform(0.0, execution_time))
