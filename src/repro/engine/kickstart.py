"""Kickstart-style records and HTCondor-style event logs.

Paper §II-C: frameworks "support counters, logs and kickstarts to profile
task executions for fault tolerance and user debugging. For each task, a
framework collects its CPU time and start/end times, samples the memory
usage over time, records input/output data sizes" — that information is
what WIRE's task predictor consumes.

This module gives the engine's :class:`~repro.engine.monitor.Monitor` the
same external surfaces the real substrate has:

- :func:`kickstart_records` / :func:`kickstart_json` — one
  Pegasus-kickstart-like record per task attempt;
- :func:`write_condor_log` / :func:`parse_condor_log` — an HTCondor
  "user log" style event stream (submit / execute / terminate / abort)
  that round-trips through the parser.

Both are faithful in structure rather than byte format: enough for
downstream tooling to consume runs, and for tests to verify that the
monitoring data WIRE sees could have been reconstructed from logs alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.engine.monitor import Monitor, TaskAttempt

__all__ = [
    "CondorEvent",
    "kickstart_json",
    "kickstart_records",
    "parse_condor_log",
    "write_condor_log",
]


# ----------------------------------------------------------------------
# kickstart records
# ----------------------------------------------------------------------
def kickstart_records(monitor: Monitor) -> list[dict]:
    """One kickstart-like record per attempt, in dispatch order.

    Fields mirror the kickstart invocation record: who ran, where, the
    phase timestamps, derived durations, byte counts, and exit status
    (0 = completed, -9 = killed by pool shrink, None = still running).
    """
    attempts = sorted(
        monitor.all_attempts(), key=lambda a: (a.dispatch_time, a.task_id, a.attempt)
    )
    return [_record(a) for a in attempts]


def _record(attempt: TaskAttempt) -> dict:
    if attempt.is_completed:
        status = 0
    elif attempt.is_killed:
        status = -9
    else:
        status = None
    return {
        "transformation": attempt.task_id,
        "derivation": attempt.stage_id,
        "attempt": attempt.attempt,
        "resource": attempt.instance_id,
        "dispatch": attempt.dispatch_time,
        "stage_in_duration": attempt.stage_in_time,
        "exec_start": attempt.exec_start,
        "exec_duration": attempt.execution_time,
        "stage_out_duration": attempt.stage_out_time,
        "complete": attempt.complete_time,
        "input_bytes": attempt.input_size,
        "output_bytes": attempt.output_size,
        "status": status,
    }


def kickstart_json(monitor: Monitor) -> str:
    """The kickstart records as a JSON document."""
    return json.dumps(kickstart_records(monitor), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# HTCondor-style user log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CondorEvent:
    """One event of the user log."""

    time: float
    kind: str  # SUBMIT | EXECUTE | TERMINATED | ABORTED
    task_id: str
    attempt: int
    resource: str

    _KINDS = ("SUBMIT", "EXECUTE", "TERMINATED", "ABORTED")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def line(self) -> str:
        return (
            f"{self.time:.6f} {self.kind} job={self.task_id} "
            f"attempt={self.attempt} host={self.resource}"
        )


def _events_for(attempt: TaskAttempt) -> list[CondorEvent]:
    events = [
        CondorEvent(
            time=attempt.dispatch_time,
            kind="SUBMIT",
            task_id=attempt.task_id,
            attempt=attempt.attempt,
            resource=attempt.instance_id,
        )
    ]
    if attempt.exec_start is not None:
        events.append(
            CondorEvent(
                time=attempt.exec_start,
                kind="EXECUTE",
                task_id=attempt.task_id,
                attempt=attempt.attempt,
                resource=attempt.instance_id,
            )
        )
    if attempt.complete_time is not None:
        events.append(
            CondorEvent(
                time=attempt.complete_time,
                kind="TERMINATED",
                task_id=attempt.task_id,
                attempt=attempt.attempt,
                resource=attempt.instance_id,
            )
        )
    elif attempt.killed_at is not None:
        events.append(
            CondorEvent(
                time=attempt.killed_at,
                kind="ABORTED",
                task_id=attempt.task_id,
                attempt=attempt.attempt,
                resource=attempt.instance_id,
            )
        )
    return events


def write_condor_log(monitor: Monitor) -> str:
    """Serialize the run's lifecycle events as a time-ordered log."""
    events: list[CondorEvent] = []
    for attempt in monitor.all_attempts():
        events.extend(_events_for(attempt))
    events.sort(key=lambda e: (e.time, e.task_id, e.attempt, e.kind))
    return "\n".join(e.line() for e in events)


def parse_condor_log(text: str) -> list[CondorEvent]:
    """Parse a log produced by :func:`write_condor_log`."""
    events: list[CondorEvent] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            time_str, kind, job_kv, attempt_kv, host_kv = line.split(" ")
            events.append(
                CondorEvent(
                    time=float(time_str),
                    kind=kind,
                    task_id=_value(job_kv, "job"),
                    attempt=int(_value(attempt_kv, "attempt")),
                    resource=_value(host_kv, "host"),
                )
            )
        except ValueError as exc:
            raise ValueError(f"malformed log line {line_number}: {line!r}") from exc
    return events


def _value(pair: str, key: str) -> str:
    prefix = f"{key}="
    if not pair.startswith(prefix):
        raise ValueError(f"expected {key}= field, got {pair!r}")
    return pair[len(prefix):]


def rebuild_monitor(events: list[CondorEvent], *, stage_of: dict[str, str]) -> Monitor:
    """Reconstruct a Monitor from a parsed event log.

    Demonstrates (and tests) that WIRE's inputs are derivable from the
    framework's logs alone — the §II-C premise. Sizes are unknown to the
    Condor log, so they come back as zero; execution times, attempt
    structure, and kill/termination status are exact. Transfer phase
    boundaries are not logged (SUBMIT->EXECUTE spans stage-in; TERMINATED
    marks stage-out completion), so stage-out time folds into the
    completion timestamp.
    """
    monitor = Monitor()
    kind_order = {"SUBMIT": 0, "EXECUTE": 1, "TERMINATED": 2, "ABORTED": 2}
    for event in sorted(
        events,
        key=lambda e: (e.time, e.task_id, e.attempt, kind_order[e.kind]),
    ):
        if event.kind == "SUBMIT":
            monitor.record_dispatch(
                event.task_id,
                stage_of[event.task_id],
                event.resource,
                event.time,
                0.0,
                0.0,
            )
        elif event.kind == "EXECUTE":
            monitor.record_exec_start(event.task_id, event.time)
        elif event.kind == "TERMINATED":
            monitor.record_exec_end(event.task_id, event.time)
            monitor.record_complete(event.task_id, event.time)
        elif event.kind == "ABORTED":
            monitor.record_kill(event.task_id, event.time)
    return monitor
