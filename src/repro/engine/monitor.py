"""Kickstart-style task monitoring.

Paper §II-C property 1: workflow frameworks already "collect [each task's]
CPU time and start/end times, ... record input/output data sizes". The
:class:`Monitor` is this repo's stand-in for Pegasus kickstart records plus
HTCondor logs: it records every task attempt's lifecycle timestamps and
answers the queries WIRE's task predictor makes at the start of each MAPE
iteration (§III-B1) — completed execution times, elapsed run times of
running tasks, recent data-transfer observations, and input sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Monitor", "TaskAttempt"]


@dataclass
class TaskAttempt:
    """One attempt at executing a task (restarts create new attempts).

    Timeline: ``dispatch_time`` (slot assigned, stage-in begins) ->
    ``exec_start`` (stage-in done, computation begins) -> ``exec_end``
    (computation done, stage-out begins) -> ``complete_time`` (stage-out
    done, slot freed). A killed attempt has ``killed_at`` set and whatever
    later timestamps it never reached left as ``None``.
    """

    task_id: str
    stage_id: str
    attempt: int
    instance_id: str
    dispatch_time: float
    input_size: float
    output_size: float
    exec_start: float | None = None
    exec_end: float | None = None
    complete_time: float | None = None
    killed_at: float | None = None
    #: True when the attempt died of an injected fault (vs a pool-shrink
    #: kill); both requeue, but experiments distinguish the causes
    failed: bool = False

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def is_completed(self) -> bool:
        return self.complete_time is not None

    @property
    def is_killed(self) -> bool:
        return self.killed_at is not None

    @property
    def in_flight(self) -> bool:
        return not self.is_completed and not self.is_killed

    @property
    def execution_time(self) -> float | None:
        """Measured pure execution seconds, if the computation finished."""
        if self.exec_start is None or self.exec_end is None:
            return None
        return self.exec_end - self.exec_start

    @property
    def stage_in_time(self) -> float | None:
        """Measured input-transfer seconds, if stage-in finished."""
        if self.exec_start is None:
            return None
        return self.exec_start - self.dispatch_time

    @property
    def stage_out_time(self) -> float | None:
        """Measured output-transfer seconds, if the attempt completed."""
        if self.complete_time is None or self.exec_end is None:
            return None
        return self.complete_time - self.exec_end

    def elapsed_execution(self, now: float) -> float:
        """Seconds the computation has been running as of ``now``.

        Zero while the attempt is still staging data in — the paper's
        "run time" of a running task measures execution, and WIRE treats
        transfers separately through ``t̃_data``.
        """
        if self.exec_start is None:
            return 0.0
        end = self.exec_end if self.exec_end is not None else now
        return max(0.0, end - self.exec_start)

    def occupancy_elapsed(self, now: float) -> float:
        """Seconds of slot occupancy so far — the sunk/restart cost basis."""
        end = now
        if self.complete_time is not None:
            end = self.complete_time
        elif self.killed_at is not None:
            end = self.killed_at
        return max(0.0, end - self.dispatch_time)


class Monitor:
    """Records task attempts and serves the predictor's online queries."""

    def __init__(self) -> None:
        self._attempts: dict[str, list[TaskAttempt]] = {}
        self._by_stage: dict[str, list[TaskAttempt]] = {}

    # ------------------------------------------------------------------
    # recording (called by the engine)
    # ------------------------------------------------------------------
    def record_dispatch(
        self,
        task_id: str,
        stage_id: str,
        instance_id: str,
        now: float,
        input_size: float,
        output_size: float,
    ) -> TaskAttempt:
        """Open a new attempt when a task is assigned to a slot."""
        history = self._attempts.setdefault(task_id, [])
        attempt = TaskAttempt(
            task_id=task_id,
            stage_id=stage_id,
            attempt=len(history) + 1,
            instance_id=instance_id,
            dispatch_time=now,
            input_size=input_size,
            output_size=output_size,
        )
        history.append(attempt)
        self._by_stage.setdefault(stage_id, []).append(attempt)
        return attempt

    def record_exec_start(self, task_id: str, now: float) -> None:
        self.current_attempt(task_id).exec_start = now

    def record_exec_end(self, task_id: str, now: float) -> None:
        self.current_attempt(task_id).exec_end = now

    def record_complete(self, task_id: str, now: float) -> None:
        self.current_attempt(task_id).complete_time = now

    def record_kill(self, task_id: str, now: float, *, failed: bool = False) -> None:
        attempt = self.current_attempt(task_id)
        attempt.killed_at = now
        attempt.failed = failed

    # ------------------------------------------------------------------
    # queries (called by controllers and experiments)
    # ------------------------------------------------------------------
    def current_attempt(self, task_id: str) -> TaskAttempt:
        """The most recent attempt for ``task_id``."""
        history = self._attempts.get(task_id)
        if not history:
            raise KeyError(f"no attempts recorded for task {task_id!r}")
        return history[-1]

    def attempts(self, task_id: str) -> list[TaskAttempt]:
        """All attempts for ``task_id`` (may be empty)."""
        return list(self._attempts.get(task_id, ()))

    def all_attempts(self) -> Iterable[TaskAttempt]:
        """Every attempt recorded so far."""
        for history in self._attempts.values():
            yield from history

    def completed_in_stage(self, stage_id: str) -> list[TaskAttempt]:
        """Completed attempts in ``stage_id`` (the predictor's training data)."""
        return [a for a in self._by_stage.get(stage_id, ()) if a.is_completed]

    def running_in_stage(self, stage_id: str) -> list[TaskAttempt]:
        """In-flight attempts in ``stage_id``."""
        return [a for a in self._by_stage.get(stage_id, ()) if a.in_flight]

    def stage_has_dispatches(self, stage_id: str) -> bool:
        """Whether any task of ``stage_id`` was ever dispatched."""
        return bool(self._by_stage.get(stage_id))

    def transfer_times_between(self, t0: float, t1: float) -> list[float]:
        """All transfer durations that *finished* in the window ``(t0, t1]``.

        This feeds the paper's ``t̃_data``: "the median of the data
        transfer times of the tasks between the n-1th and nth MAPE
        iterations". Stage-in and stage-out observations both count.
        """
        observations: list[float] = []
        for attempt in self.all_attempts():
            if attempt.exec_start is not None and t0 < attempt.exec_start <= t1:
                observations.append(attempt.stage_in_time or 0.0)
            if (
                attempt.complete_time is not None
                and t0 < attempt.complete_time <= t1
            ):
                observations.append(attempt.stage_out_time or 0.0)
        return observations

    def total_restarts(self) -> int:
        """Number of killed attempts across the run (wasted work events)."""
        return sum(1 for a in self.all_attempts() if a.is_killed)

    def total_failures(self) -> int:
        """Killed attempts attributable to injected faults."""
        return sum(1 for a in self.all_attempts() if a.failed)

    def wasted_occupancy(self) -> float:
        """Total slot-seconds consumed by attempts that were later killed."""
        return sum(
            a.occupancy_elapsed(a.killed_at)  # type: ignore[arg-type]
            for a in self.all_attempts()
            if a.is_killed
        )
