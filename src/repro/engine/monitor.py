"""Kickstart-style task monitoring.

Paper §II-C property 1: workflow frameworks already "collect [each task's]
CPU time and start/end times, ... record input/output data sizes". The
:class:`Monitor` is this repo's stand-in for Pegasus kickstart records plus
HTCondor logs: it records every task attempt's lifecycle timestamps and
answers the queries WIRE's task predictor makes at the start of each MAPE
iteration (§III-B1) — completed execution times, elapsed run times of
running tasks, recent data-transfer observations, and input sizes.

The per-tick queries are served from aggregates maintained incrementally
on every record event (completed/running attempt lists per stage, a
chronological transfer-observation log) instead of rescanning the full
attempt history each MAPE tick; the results are element-for-element
identical to the historical full scans (same ordering), which the
regression tests assert against brute-force reference implementations.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Monitor", "TaskAttempt"]

# transfer-observation kinds, ordered the way the historical full scan
# listed them (stage-in before stage-out within one attempt)
_OBS_STAGE_IN = 0
_OBS_STAGE_OUT = 1


@dataclass(slots=True)
class TaskAttempt:
    """One attempt at executing a task (restarts create new attempts).

    Timeline: ``dispatch_time`` (slot assigned, stage-in begins) ->
    ``exec_start`` (stage-in done, computation begins) -> ``exec_end``
    (computation done, stage-out begins) -> ``complete_time`` (stage-out
    done, slot freed). A killed attempt has ``killed_at`` set and whatever
    later timestamps it never reached left as ``None``.
    """

    task_id: str
    stage_id: str
    attempt: int
    instance_id: str
    dispatch_time: float
    input_size: float
    output_size: float
    exec_start: float | None = None
    exec_end: float | None = None
    complete_time: float | None = None
    killed_at: float | None = None
    #: True when the attempt died of an injected fault (vs a pool-shrink
    #: kill); both requeue, but experiments distinguish the causes
    failed: bool = False
    #: when the task (re)entered the ready queue before this dispatch;
    #: None when the engine runs untraced (it skips ready-time tracking)
    ready_time: float | None = None
    #: dispatch index within the stage (Monitor bookkeeping; preserves
    #: the stage-scan ordering in incremental query results)
    _stage_seq: int = field(default=0, repr=False, compare=False)
    #: first-dispatch index of the task (Monitor bookkeeping; preserves
    #: the all-attempts scan ordering in transfer_times_between)
    _task_order: int = field(default=0, repr=False, compare=False)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def is_completed(self) -> bool:
        return self.complete_time is not None

    @property
    def is_killed(self) -> bool:
        return self.killed_at is not None

    @property
    def in_flight(self) -> bool:
        return not self.is_completed and not self.is_killed

    @property
    def execution_time(self) -> float | None:
        """Measured pure execution seconds, if the computation finished."""
        if self.exec_start is None or self.exec_end is None:
            return None
        return self.exec_end - self.exec_start

    @property
    def stage_in_time(self) -> float | None:
        """Measured input-transfer seconds, if stage-in finished."""
        if self.exec_start is None:
            return None
        return self.exec_start - self.dispatch_time

    @property
    def stage_out_time(self) -> float | None:
        """Measured output-transfer seconds, if the attempt completed."""
        if self.complete_time is None or self.exec_end is None:
            return None
        return self.complete_time - self.exec_end

    @property
    def queue_wait(self) -> float | None:
        """Seconds between becoming ready and slot assignment, if known."""
        if self.ready_time is None:
            return None
        return max(0.0, self.dispatch_time - self.ready_time)

    def elapsed_execution(self, now: float) -> float:
        """Seconds the computation has been running as of ``now``.

        Zero while the attempt is still staging data in — the paper's
        "run time" of a running task measures execution, and WIRE treats
        transfers separately through ``t̃_data``.
        """
        if self.exec_start is None:
            return 0.0
        end = self.exec_end if self.exec_end is not None else now
        return max(0.0, end - self.exec_start)

    def occupancy_elapsed(self, now: float) -> float:
        """Seconds of slot occupancy so far — the sunk/restart cost basis."""
        end = now
        if self.complete_time is not None:
            end = self.complete_time
        elif self.killed_at is not None:
            end = self.killed_at
        return max(0.0, end - self.dispatch_time)


class Monitor:
    """Records task attempts and serves the predictor's online queries."""

    def __init__(self) -> None:
        self._attempts: dict[str, list[TaskAttempt]] = {}
        self._by_stage: dict[str, list[TaskAttempt]] = {}
        # incremental aggregates, maintained on record events -----------
        #: completed attempts per stage, in stage-dispatch order
        self._completed_by_stage: dict[str, list[TaskAttempt]] = {}
        #: in-flight attempts per stage, keyed by stage-dispatch index
        #: (dict preserves ascending insertion, completions/kills delete)
        self._running_by_stage: dict[str, dict[int, TaskAttempt]] = {}
        #: bumped whenever a stage gains a completed attempt (cache key
        #: for consumers aggregating over completed_in_stage)
        self._completed_version: dict[str, int] = {}
        #: transfer observations: (finish_time, task_order, attempt, kind,
        #: duration), appended chronologically in simulation use
        self._transfer_obs: list[tuple[float, int, int, int, float]] = []
        self._transfer_obs_sorted = True
        #: append-only chronological log of completed attempts (a task
        #: completes at most once, so entries are unique per task); the
        #: predictor's incremental run-state build consumes it as a
        #: completion-delta stream via :meth:`completed_since`
        self._completed_log: list[TaskAttempt] = []
        self._restarts = 0
        self._failures = 0

    # ------------------------------------------------------------------
    # recording (called by the engine)
    # ------------------------------------------------------------------
    def record_dispatch(
        self,
        task_id: str,
        stage_id: str,
        instance_id: str,
        now: float,
        input_size: float,
        output_size: float,
        *,
        ready_time: float | None = None,
    ) -> TaskAttempt:
        """Open a new attempt when a task is assigned to a slot."""
        history = self._attempts.get(task_id)
        if history is None:
            task_order = len(self._attempts)
            history = self._attempts[task_id] = []
        else:
            task_order = history[0]._task_order
        stage_list = self._by_stage.setdefault(stage_id, [])
        attempt = TaskAttempt(
            task_id=task_id,
            stage_id=stage_id,
            attempt=len(history) + 1,
            instance_id=instance_id,
            dispatch_time=now,
            input_size=input_size,
            output_size=output_size,
            ready_time=ready_time,
            _stage_seq=len(stage_list),
            _task_order=task_order,
        )
        history.append(attempt)
        stage_list.append(attempt)
        self._running_by_stage.setdefault(stage_id, {})[
            attempt._stage_seq
        ] = attempt
        return attempt

    def _record_transfer_obs(
        self, attempt: TaskAttempt, finish_time: float, kind: int, duration: float
    ) -> None:
        obs = self._transfer_obs
        if obs and finish_time < obs[-1][0]:
            # out-of-order recording (only possible outside the engine's
            # monotonic event loop); fall back to sorting on next query
            self._transfer_obs_sorted = False
        obs.append(
            (finish_time, attempt._task_order, attempt.attempt, kind, duration)
        )

    def record_exec_start(self, task_id: str, now: float) -> None:
        attempt = self.current_attempt(task_id)
        attempt.exec_start = now
        self._record_transfer_obs(
            attempt, now, _OBS_STAGE_IN, attempt.stage_in_time or 0.0
        )

    def record_exec_end(self, task_id: str, now: float) -> None:
        self.current_attempt(task_id).exec_end = now

    def record_complete(self, task_id: str, now: float) -> None:
        attempt = self.current_attempt(task_id)
        attempt.complete_time = now
        stage_id = attempt.stage_id
        running = self._running_by_stage.get(stage_id)
        if running is not None:
            running.pop(attempt._stage_seq, None)
        # completions arrive roughly in dispatch order, so the insort is
        # amortized O(1); the list stays in stage-dispatch order, matching
        # what a full scan of the stage's attempts would produce
        insort(
            self._completed_by_stage.setdefault(stage_id, []),
            attempt,
            key=lambda a: a._stage_seq,
        )
        self._completed_version[stage_id] = (
            self._completed_version.get(stage_id, 0) + 1
        )
        self._completed_log.append(attempt)
        self._record_transfer_obs(
            attempt, now, _OBS_STAGE_OUT, attempt.stage_out_time or 0.0
        )

    def record_kill(self, task_id: str, now: float, *, failed: bool = False) -> None:
        attempt = self.current_attempt(task_id)
        attempt.killed_at = now
        attempt.failed = failed
        running = self._running_by_stage.get(attempt.stage_id)
        if running is not None:
            running.pop(attempt._stage_seq, None)
        self._restarts += 1
        if failed:
            self._failures += 1

    # ------------------------------------------------------------------
    # queries (called by controllers and experiments)
    # ------------------------------------------------------------------
    def current_attempt(self, task_id: str) -> TaskAttempt:
        """The most recent attempt for ``task_id``."""
        history = self._attempts.get(task_id)
        if not history:
            raise KeyError(f"no attempts recorded for task {task_id!r}")
        return history[-1]

    def attempts(self, task_id: str) -> list[TaskAttempt]:
        """All attempts for ``task_id`` (may be empty)."""
        return list(self._attempts.get(task_id, ()))

    def all_attempts(self) -> Iterable[TaskAttempt]:
        """Every attempt recorded so far."""
        for history in self._attempts.values():
            yield from history

    def completed_in_stage(self, stage_id: str) -> list[TaskAttempt]:
        """Completed attempts in ``stage_id`` (the predictor's training data)."""
        return list(self._completed_by_stage.get(stage_id, ()))

    def completed_version(self, stage_id: str) -> int:
        """Monotonic counter, bumped when ``stage_id`` gains a completion.

        Consumers caching aggregates over :meth:`completed_in_stage` (the
        predictor's per-stage groupings) key their caches on this.
        """
        return self._completed_version.get(stage_id, 0)

    def completed_log_length(self) -> int:
        """Cursor position for :meth:`completed_since` (total completions)."""
        return len(self._completed_log)

    def completed_since(self, cursor: int) -> list[TaskAttempt]:
        """Completed attempts recorded after ``cursor``, in completion order.

        ``cursor`` is a previous :meth:`completed_log_length` value. The
        log is append-only and completion is terminal, so the slice is an
        exact delta stream: every task appears at most once, ever.
        """
        return self._completed_log[cursor:]

    def running_in_stage(self, stage_id: str) -> list[TaskAttempt]:
        """In-flight attempts in ``stage_id``."""
        running = self._running_by_stage.get(stage_id)
        if not running:
            return []
        return list(running.values())

    def in_flight_task_ids(self) -> list[str]:
        """Task ids of all in-flight attempts (unordered).

        Served from the per-stage running aggregates in O(in-flight);
        consumers needing a specific order (the run-state build wants
        topological) sort the handful of returned ids themselves.
        """
        out: list[str] = []
        for running in self._running_by_stage.values():
            for attempt in running.values():
                out.append(attempt.task_id)
        return out

    def stage_has_dispatches(self, stage_id: str) -> bool:
        """Whether any task of ``stage_id`` was ever dispatched."""
        return bool(self._by_stage.get(stage_id))

    def transfer_times_between(self, t0: float, t1: float) -> list[float]:
        """All transfer durations that *finished* in the window ``(t0, t1]``.

        This feeds the paper's ``t̃_data``: "the median of the data
        transfer times of the tasks between the n-1th and nth MAPE
        iterations". Stage-in and stage-out observations both count.

        Served by bisecting the chronological observation log (O(log n +
        window) instead of a full-history scan); the returned order is the
        historical scan order — attempts in first-dispatch order, stage-in
        before stage-out within an attempt.
        """
        obs = self._transfer_obs
        if not self._transfer_obs_sorted:
            obs.sort(key=lambda o: o[0])
            self._transfer_obs_sorted = True
        lo = bisect_right(obs, t0, key=lambda o: o[0])
        hi = bisect_right(obs, t1, key=lambda o: o[0])
        window = sorted(obs[lo:hi], key=lambda o: (o[1], o[2], o[3]))
        return [duration for _, _, _, _, duration in window]

    def transfer_durations_between(self, t0: float, t1: float) -> list[float]:
        """Transfer durations finishing in ``(t0, t1]``, in log order.

        Same multiset as :meth:`transfer_times_between` without the
        attempt-order sort — for consumers whose aggregate is
        order-independent (the ``t̃_data`` median sorts internally).
        """
        obs = self._transfer_obs
        if not self._transfer_obs_sorted:
            obs.sort(key=lambda o: o[0])
            self._transfer_obs_sorted = True
        lo = bisect_right(obs, t0, key=lambda o: o[0])
        hi = bisect_right(obs, t1, key=lambda o: o[0])
        return [o[4] for o in obs[lo:hi]]

    def total_restarts(self) -> int:
        """Number of killed attempts across the run (wasted work events)."""
        return self._restarts

    def total_failures(self) -> int:
        """Killed attempts attributable to injected faults."""
        return self._failures

    def wasted_occupancy(self) -> float:
        """Total slot-seconds consumed by attempts that were later killed."""
        return sum(
            a.occupancy_elapsed(a.killed_at)  # type: ignore[arg-type]
            for a in self.all_attempts()
            if a.is_killed
        )
