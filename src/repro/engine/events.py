"""Discrete-event primitives.

The engine advances simulated time through a priority queue of events.
Ordering is ``(time, kind priority, seq)``: at equal timestamps, task
lifecycle progress and instance arrivals fire before instance
terminations, and controller ticks observe last. The kind ordering is
load-bearing — WIRE releases instances exactly at their charge boundary,
and a task predicted to finish "by the boundary" must complete before the
termination fires or it would be killed at 100% sunk cost. The ``seq``
insertion counter breaks remaining ties, keeping runs bit-reproducible.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventKind", "EventQueue"]


class EventKind(enum.Enum):
    """All event types the workflow engine understands."""

    INSTANCE_READY = "instance_ready"  # a PENDING instance becomes usable
    INSTANCE_TERMINATE = "instance_terminate"  # a scheduled release fires
    STAGE_IN_DONE = "stage_in_done"  # a task finished staging input data
    EXEC_DONE = "exec_done"  # a task finished computing
    STAGE_OUT_DONE = "stage_out_done"  # a task finished writing output
    TASK_FAILED = "task_failed"  # an attempt died mid-execution (fault)
    CONTROLLER_TICK = "controller_tick"  # a MAPE iteration begins
    INSTANCE_REVOKED = "instance_revoked"  # the provider preempts an instance
    PROVISION_FAILED = "provision_failed"  # an ordered launch came back failed
    PROVISION_RETRY = "provision_retry"  # backoff elapsed; re-issue a launch
    WORKFLOW_ARRIVAL = "workflow_arrival"  # a tenant submits a workflow (fleet)

    @property
    def priority(self) -> int:
        """Same-timestamp ordering class (lower fires first)."""
        return _PRIORITY[self]


#: same-timestamp ordering classes (lower fires first); a flat table so
#: the per-push cost is one dict hit instead of an enum property call
_PRIORITY = {kind: 0 for kind in EventKind}
_PRIORITY[EventKind.INSTANCE_TERMINATE] = 1
# A revocation at time t must not beat a completion at time t: the task
# legitimately finished before the provider pulled the plug. Same
# ordering class as a planned release.
_PRIORITY[EventKind.INSTANCE_REVOKED] = 1
_PRIORITY[EventKind.CONTROLLER_TICK] = 2


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence.

    ``payload`` identifies the subject (a task id, an instance id, ...).
    Events carry no behaviour; the simulator dispatches on ``kind``.
    """

    time: float
    seq: int
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")


@dataclass
class EventQueue:
    """A deterministic min-heap of events.

    Cancellation is lazy (cancelled events stay heap-resident until
    popped) and idempotent: cancelling an event that was already popped,
    or cancelling twice, is a no-op, so ``__len__`` stays exact.
    """

    _heap: list[tuple[float, int, int, Event]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)
    _cancelled: set[int] = field(default_factory=set)
    #: seqs currently in the heap and not cancelled
    _live: set[int] = field(default_factory=set)
    #: live events grouped by payload, so cancelling everything that
    #: belongs to one subject (e.g. a revoked instance) is O(events on
    #: that subject) instead of a full-heap scan; unhashable payloads
    #: are simply not indexed
    _by_payload: dict[Any, set[Event]] = field(default_factory=dict)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return it (its ``seq`` allows cancellation)."""
        event = Event(time=time, seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(
            self._heap, (event.time, _PRIORITY[kind], event.seq, event)
        )
        self._live.add(event.seq)
        try:
            self._by_payload.setdefault(payload, set()).add(event)
        except TypeError:
            pass  # unhashable payload: not payload-cancellable
        return event

    def _unindex(self, event: Event) -> None:
        try:
            bucket = self._by_payload.get(event.payload)
        except TypeError:
            return
        if bucket is not None:
            bucket.discard(event)
            if not bucket:
                del self._by_payload[event.payload]

    def cancel(self, event: Event) -> None:
        """Mark ``event`` so it is skipped when popped (lazy deletion).

        Cancelling an event that was already popped (or already
        cancelled) is a no-op: only seqs still live in the heap enter the
        cancelled set, so the size bookkeeping cannot drift.
        """
        if event.seq in self._live:
            self._live.discard(event.seq)
            self._cancelled.add(event.seq)
            self._unindex(event)

    def cancel_for_payload(
        self, payload: Any, kind: EventKind | None = None
    ) -> int:
        """Cancel every live event whose payload equals ``payload``.

        Returns the number of events cancelled. When ``kind`` is given,
        only events of that kind are cancelled. This is how a revoked
        instance retracts its queued completions/terminations without
        scanning the whole heap.
        """
        bucket = self._by_payload.get(payload)
        if not bucket:
            return 0
        victims = [
            event
            for event in bucket
            if kind is None or event.kind is kind
        ]
        for event in victims:
            self.cancel(event)
        return len(victims)

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            self._live.discard(event.seq)
            self._unindex(event)
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or None when empty."""
        key = self.peek_key()
        return key[0] if key is not None else None

    def peek_key(self) -> tuple[float, int, int] | None:
        """Full ordering key ``(time, priority, seq)`` of the earliest
        pending event, or None when empty.

        This is what a :class:`~repro.fleet.shard.ShardedEventQueue`
        compares across shards: the key is globally unique (``seq`` comes
        from a shared counter), so a K-way merge over per-shard heads
        reproduces the single-queue total order exactly.
        """
        while self._heap:
            time, priority, seq, event = self._heap[0]
            if event.seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(event.seq)
                continue
            return (time, priority, seq)
        return None

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)
