"""Workflow execution engine (Pegasus WMS / HTCondor stand-in).

A deterministic discrete-event simulator that runs one workflow on an
elastic pool of simulated cloud instances, with kickstart-style monitoring,
FIFO scheduling with the paper's first-five stage boost, and a pluggable
autoscaler invoked on the MAPE cadence.
"""

from repro.engine.control import (
    Autoscaler,
    Observation,
    ScalingDecision,
    TerminationOrder,
)
from repro.engine.events import Event, EventKind, EventQueue
from repro.engine.faults import FaultModel, NoFaults, RandomFaults
from repro.engine.master import FrameworkMaster, TaskExecState
from repro.engine.monitor import Monitor, TaskAttempt
from repro.engine.runtime import (
    NominalRuntimeModel,
    PerturbedRuntimeModel,
    TaskRuntimeModel,
)
from repro.engine.scheduler import FifoScheduler, LifoScheduler, RandomScheduler
from repro.engine.simulator import RunResult, Simulation
from repro.engine.transfer import (
    DataTransferModel,
    ExponentialTransferModel,
    LinearTransferModel,
    LocalityTransferModel,
    NoTransferModel,
)

__all__ = [
    "Autoscaler",
    "DataTransferModel",
    "Event",
    "EventKind",
    "EventQueue",
    "ExponentialTransferModel",
    "FaultModel",
    "FifoScheduler",
    "FrameworkMaster",
    "LifoScheduler",
    "LinearTransferModel",
    "LocalityTransferModel",
    "Monitor",
    "NoFaults",
    "NoTransferModel",
    "NominalRuntimeModel",
    "Observation",
    "PerturbedRuntimeModel",
    "RandomFaults",
    "RandomScheduler",
    "RunResult",
    "ScalingDecision",
    "Simulation",
    "TaskAttempt",
    "TaskExecState",
    "TaskRuntimeModel",
    "TerminationOrder",
]
