"""Data transfer models.

Paper §III-B1: "we presume a task's data transfer follows a memoryless
distribution", i.e. transfer times are exponentially distributed around a
size-dependent mean, reflecting the transient interference and varying
pool membership discussed in §II-B. WIRE itself estimates transfer times
from the *median of recent observations* — that logic lives in the task
predictor; these classes only generate the ground truth the engine
realizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dag.task import Task
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "DataTransferModel",
    "ExponentialTransferModel",
    "LinearTransferModel",
    "LocalityTransferModel",
    "NoTransferModel",
]


class DataTransferModel(Protocol):
    """Generates stage-in / stage-out durations for task attempts."""

    def stage_in_time(self, task: Task, rng: np.random.Generator) -> float:
        """Seconds to stage the task's input data onto its instance."""
        ...

    def stage_out_time(self, task: Task, rng: np.random.Generator) -> float:
        """Seconds to stage the task's output data off its instance."""
        ...


@dataclass(frozen=True)
class NoTransferModel:
    """Zero-cost transfers — for tests and the §IV-A linear simulations,
    where occupancy is pure execution time."""

    def stage_in_time(self, task: Task, rng: np.random.Generator) -> float:
        return 0.0

    def stage_out_time(self, task: Task, rng: np.random.Generator) -> float:
        return 0.0


@dataclass(frozen=True)
class LinearTransferModel:
    """Deterministic transfers: ``latency + bytes / bandwidth``.

    Useful when a test needs exact occupancy arithmetic.
    """

    bandwidth: float  # bytes per second
    latency: float = 0.0  # fixed per-transfer seconds

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("latency", self.latency)

    def _time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth

    def stage_in_time(self, task: Task, rng: np.random.Generator) -> float:
        return self._time(task.input_size)

    def stage_out_time(self, task: Task, rng: np.random.Generator) -> float:
        return self._time(task.output_size)


@dataclass(frozen=True)
class ExponentialTransferModel:
    """The paper's memoryless transfer model.

    Each transfer draws from an exponential distribution whose mean is
    ``latency + bytes / bandwidth``: bigger inputs take longer on average,
    but individual transfers vary widely, exactly the regime in which a
    median-of-recent-observations estimator (``t̃_data``) is appropriate.
    """

    bandwidth: float  # bytes per second
    latency: float = 0.5  # fixed per-transfer mean component, seconds

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("latency", self.latency)

    def _sample(self, nbytes: float, rng: np.random.Generator) -> float:
        mean = self.latency + nbytes / self.bandwidth
        if mean <= 0.0:
            return 0.0
        return float(rng.exponential(mean))

    def stage_in_time(self, task: Task, rng: np.random.Generator) -> float:
        return self._sample(task.input_size, rng)

    def stage_out_time(self, task: Task, rng: np.random.Generator) -> float:
        return self._sample(task.output_size, rng)


@dataclass(frozen=True)
class LocalityTransferModel:
    """Placement-aware memoryless transfers.

    Input bytes whose producers ran on the *same* instance are read
    locally at ``local_speedup`` times the network bandwidth; the rest
    cross the network. The engine computes the local fraction from where
    each parent's final attempt completed and calls
    :meth:`stage_in_time_placed`; models without that method are treated
    as placement-blind.

    This stresses WIRE's transfer estimator realistically: observed
    transfer times become bimodal (local vs remote), and the median
    ``t̃_data`` lands on whichever mode dominates the recent window.
    """

    bandwidth: float  # network bytes per second
    latency: float = 0.5
    local_speedup: float = 10.0

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("latency", self.latency)
        check_positive("local_speedup", self.local_speedup)

    def _sample(self, mean: float, rng: np.random.Generator) -> float:
        if mean <= 0.0:
            return 0.0
        return float(rng.exponential(mean))

    def stage_in_time_placed(
        self, task: Task, local_fraction: float, rng: np.random.Generator
    ) -> float:
        if not 0.0 <= local_fraction <= 1.0:
            raise ValueError(
                f"local_fraction must be in [0, 1], got {local_fraction}"
            )
        remote_bytes = task.input_size * (1.0 - local_fraction)
        local_bytes = task.input_size * local_fraction
        mean = (
            self.latency
            + remote_bytes / self.bandwidth
            + local_bytes / (self.bandwidth * self.local_speedup)
        )
        return self._sample(mean, rng)

    def stage_in_time(self, task: Task, rng: np.random.Generator) -> float:
        """Placement-blind fallback: everything crosses the network."""
        return self.stage_in_time_placed(task, 0.0, rng)

    def stage_out_time(self, task: Task, rng: np.random.Generator) -> float:
        # Outputs are written to instance-local storage and published
        # lazily; only the fixed publishing latency applies here.
        return self._sample(self.latency, rng)
