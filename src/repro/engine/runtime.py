"""Task execution-time realization.

The workload generator stamps each task with a nominal ``runtime``; a
runtime model decides what the engine actually realizes for a given
attempt on a given instance. Separating the two lets us model the paper's
two variability axes independently: intra-stage skew is baked into the
nominal runtimes by the generators (Observation 1), while cross-run and
cross-instance variability (Observation 2) is layered on here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Protocol

import numpy as np

from repro.cloud.instance import Instance
from repro.dag.task import Task
from repro.util.validation import check_non_negative

__all__ = ["NominalRuntimeModel", "PerturbedRuntimeModel", "TaskRuntimeModel"]


class TaskRuntimeModel(Protocol):
    """Realizes execution durations for task attempts."""

    #: short identifier recorded in run telemetry (trace run_meta records)
    name: str

    def execution_time(
        self,
        task: Task,
        instance: Instance,
        attempt: int,
        rng: np.random.Generator,
    ) -> float:
        """Seconds of pure execution for this attempt (excludes transfers)."""
        ...


@dataclass(frozen=True)
class NominalRuntimeModel:
    """Deterministic: nominal runtime scaled by the instance's speed."""

    name: ClassVar[str] = "nominal"

    def execution_time(
        self,
        task: Task,
        instance: Instance,
        attempt: int,
        rng: np.random.Generator,
    ) -> float:
        return task.runtime / instance.itype.speed_factor


@dataclass(frozen=True)
class PerturbedRuntimeModel:
    """Lognormal multiplicative noise around the nominal runtime.

    ``cv`` is the coefficient of variation of the noise factor. The factor
    has mean 1, so expected durations match the nominal runtimes while
    individual attempts vary — the interference effect of §II-B. Each
    attempt resamples, so a restarted task may run a different duration in
    the same run, as it would on a real cloud.
    """

    name: ClassVar[str] = "perturbed"

    cv: float = 0.1

    def __post_init__(self) -> None:
        check_non_negative("cv", self.cv)

    def execution_time(
        self,
        task: Task,
        instance: Instance,
        attempt: int,
        rng: np.random.Generator,
    ) -> float:
        base = task.runtime / instance.itype.speed_factor
        if self.cv == 0.0 or base == 0.0:
            return base
        sigma2 = np.log1p(self.cv**2)
        # mean of lognorm(mu, sigma) is exp(mu + sigma^2/2); choose mu so
        # the multiplicative factor has expectation exactly 1.
        mu = -0.5 * sigma2
        factor = float(rng.lognormal(mean=mu, sigma=float(np.sqrt(sigma2))))
        return base * factor
