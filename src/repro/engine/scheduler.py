"""Task schedulers with the paper's first-*k* stage boost.

Paper §III-C: "WIRE dispatches the first five ready-to-run tasks to fire in
a stage with high priority. These tasks often run before the final tasks of
predecessor stages ... which provides the performance data for more
stages" — i.e. the boost exists to warm up the online predictors quickly.

The default scheduler is plain FIFO, matching the expected framework
scheduling the steering policy assumes (§III-D). §III-D also concedes the
controller's "predicted assignment of tasks to instances might differ from
the true schedule selected by the framework master" and claims the drift
effect is minor; :class:`LifoScheduler` and :class:`RandomScheduler`
realize such drift (their ``snapshot`` still reports the insertion order
the controller assumes, while ``pop`` diverges), so the claim can be
tested (``benchmarks/bench_scheduler_drift.py``).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.util.rng import spawn_rng

__all__ = ["FifoScheduler", "LifoScheduler", "RandomScheduler"]

_PRIORITY_BOOSTED = 0
_PRIORITY_NORMAL = 1


class FifoScheduler:
    """Priority-FIFO queue of ready task ids.

    Within a priority class, tasks pop in insertion order. The first
    ``boost_k`` tasks of each stage to become ready are enqueued at boosted
    priority; requeued (killed-and-restarted) tasks are also boosted so
    their sunk work is recovered promptly.
    """

    def __init__(self, boost_k: int = 5) -> None:
        if not isinstance(boost_k, int) or boost_k < 0:
            raise ValueError(f"boost_k must be a non-negative int, got {boost_k!r}")
        self.boost_k = boost_k
        self._heap: list[tuple[int, int, str]] = []
        self._counter = itertools.count()
        self._boosted_per_stage: dict[str, int] = {}
        self._queued: set[str] = set()

    def push(self, task_id: str, stage_id: str, *, requeue: bool = False) -> None:
        """Enqueue a ready task.

        ``requeue=True`` marks a task resubmitted after its instance was
        terminated (Algorithm 2 line 12); it gets boosted priority without
        consuming the stage's boost budget.
        """
        if task_id in self._queued:
            raise RuntimeError(f"task {task_id!r} is already queued")
        if requeue:
            priority = _PRIORITY_BOOSTED
        else:
            used = self._boosted_per_stage.get(stage_id, 0)
            if used < self.boost_k:
                self._boosted_per_stage[stage_id] = used + 1
                priority = _PRIORITY_BOOSTED
            else:
                priority = _PRIORITY_NORMAL
        heapq.heappush(self._heap, (priority, next(self._counter), task_id))
        self._queued.add(task_id)

    def pop(self) -> str | None:
        """Dequeue the next task id, or None when empty."""
        while self._heap:
            _, _, task_id = heapq.heappop(self._heap)
            if task_id in self._queued:
                self._queued.discard(task_id)
                return task_id
        return None

    def __len__(self) -> int:
        return len(self._queued)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._queued


    def _remove(self, entry: tuple[int, int, str]) -> None:
        """Remove a specific entry, restoring the heap invariant.

        O(n), but n is the live queue — fine at engine scale, and it
        keeps requeued tasks from leaving stale duplicates behind.
        """
        self._heap.remove(entry)
        heapq.heapify(self._heap)
        self._queued.discard(entry[2])

    def snapshot(self) -> tuple[str, ...]:
        """Queued task ids in *assumed* (FIFO) pop order, unmutated.

        WIRE's lookahead simulator uses this to project the framework's
        dispatch decisions (§III-D). Drift-modelling subclasses keep this
        FIFO view while popping in a different order.
        """
        entries = sorted(e for e in self._heap if e[2] in self._queued)
        return tuple(task_id for _, _, task_id in entries)


class LifoScheduler(FifoScheduler):
    """Pops the most recently queued task within each priority class.

    Maximal structured drift from the controller's FIFO assumption.
    """

    def pop(self) -> str | None:
        entries = sorted(e for e in self._heap if e[2] in self._queued)
        if not entries:
            return None
        # Last insertion within the best (lowest) priority class.
        best_priority = entries[0][0]
        entry = max(e for e in entries if e[0] == best_priority)
        self._remove(entry)
        return entry[2]


class RandomScheduler(FifoScheduler):
    """Pops a uniformly random queued task within the best priority class.

    Unstructured drift; deterministic for a given seed.
    """

    def __init__(self, boost_k: int = 5, *, seed: int = 0) -> None:
        super().__init__(boost_k)
        self._rng: np.random.Generator = spawn_rng(seed, "random-scheduler")

    def pop(self) -> str | None:
        entries = sorted(e for e in self._heap if e[2] in self._queued)
        if not entries:
            return None
        best_priority = entries[0][0]
        candidates = [e for e in entries if e[0] == best_priority]
        entry = candidates[int(self._rng.integers(0, len(candidates)))]
        self._remove(entry)
        return entry[2]
