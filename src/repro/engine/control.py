"""The engine <-> autoscaler contract.

At every MAPE tick the simulator hands the active autoscaler an
:class:`Observation` — everything a controller co-located with the
framework master could legitimately see (paper §II-C: monitored lifecycles,
the DAG, pool and billing state) — and receives a :class:`ScalingDecision`
back. The engine applies launches with the site's provisioning lag and
terminations at the decision's chosen times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cloud.billing import BillingModel
from repro.cloud.instance import Instance
from repro.cloud.pool import InstancePool
from repro.cloud.site import CloudSite
from repro.dag.workflow import Workflow
from repro.engine.master import FrameworkMaster, TaskExecState
from repro.engine.monitor import Monitor
from repro.telemetry.records import TickTelemetry

__all__ = ["Autoscaler", "Observation", "ScalingDecision", "TerminationOrder"]


@dataclass(frozen=True)
class TerminationOrder:
    """Release ``instance_id`` at absolute simulation time ``at``.

    WIRE schedules releases at an instance's charge boundary so no paid
    time is forfeited (Algorithm 2); reactive policies release immediately.
    """

    instance_id: str
    at: float


@dataclass(frozen=True)
class ScalingDecision:
    """The outcome of one control iteration."""

    launch: int = 0
    terminations: tuple[TerminationOrder, ...] = ()

    def __post_init__(self) -> None:
        if self.launch < 0:
            raise ValueError(f"launch must be >= 0, got {self.launch}")
        if self.launch and self.terminations:
            raise ValueError("a decision cannot both launch and terminate")

    @property
    def is_noop(self) -> bool:
        return self.launch == 0 and not self.terminations


NO_CHANGE = ScalingDecision()


@dataclass
class Observation:
    """Snapshot handed to the autoscaler at a MAPE tick.

    ``window_start`` is the time of the previous tick, so
    ``monitor.transfer_times_between(window_start, now)`` yields exactly
    the paper's "observations between the n-1th and nth MAPE iterations".
    Under chaos monitor blackouts in delayed-records mode it can reach
    further back: the first clear tick after a blackout is handed the
    whole starved window at once.
    """

    now: float
    window_start: float
    workflow: Workflow
    master: FrameworkMaster
    monitor: Monitor
    pool: InstancePool
    billing: BillingModel
    site: CloudSite
    queued_task_ids: tuple[str, ...]
    draining_ids: frozenset[str] = field(default_factory=frozenset)
    #: True when cloud-fault injection blacked out this tick's kickstart
    #: records: the monitor's fresh interval data must be treated as
    #: missing and predictive controllers should fall back to their
    #: last-known model (:mod:`repro.cloud.faults`)
    monitor_blackout: bool = False

    # ------------------------------------------------------------------
    # convenience views shared by every policy
    # ------------------------------------------------------------------
    @property
    def charging_unit(self) -> float:
        return self.billing.charging_unit

    @property
    def lag(self) -> float:
        return self.site.lag

    def steerable_instances(self) -> list[Instance]:
        """RUNNING instances not already scheduled for termination."""
        return [
            i
            for i in self.pool.running()
            if i.instance_id not in self.draining_ids
        ]

    def effective_pool_size(self) -> int:
        """Pool size the policy should plan against.

        Counts RUNNING (minus draining, which will be gone) plus PENDING
        (already ordered, will arrive) instances.
        """
        running = len(self.steerable_instances())
        pending = len(self.pool.pending())
        return running + pending

    def runnable_task_count(self) -> int:
        """Tasks ready or in flight — the reactive policies' load signal."""
        master = self.master
        return (
            master.count(TaskExecState.READY)
            + master.count(TaskExecState.STAGING_IN)
            + master.count(TaskExecState.EXECUTING)
            + master.count(TaskExecState.STAGING_OUT)
        )

    def restart_cost(self, instance: Instance) -> float:
        """Max sunk occupancy of any task on ``instance`` as of now.

        The paper's ``c_j``: "the maximum sunk cost (consumed slot
        occupancy time ...) of any task assigned to a slot on instance j".
        """
        cost = 0.0
        for task_id in instance.occupants:
            attempt = self.monitor.current_attempt(task_id)
            cost = max(cost, attempt.occupancy_elapsed(self.now))
        return cost


class Autoscaler(ABC):
    """A pool-sizing policy. Subclasses must be engine-agnostic."""

    #: short name used in experiment reports ("wire", "full-site", ...)
    name: str = "autoscaler"

    @abstractmethod
    def plan(self, obs: Observation) -> ScalingDecision:
        """Compute pool changes for the upcoming interval."""

    def initial_pool_size(self, site: CloudSite) -> int:
        """Instances to provision before the run starts (default: one)."""
        return min(1, site.max_instances)

    def state_size_bytes(self) -> int | None:
        """Approximate controller state footprint, for the §IV-F overhead
        report. None means "not tracked"."""
        return None

    def tick_telemetry(self) -> TickTelemetry | None:
        """Controller-internal detail of the most recent :meth:`plan` call.

        The engine invokes this only when a trace sink is attached, after
        applying the decision, and attaches the result to the tick's
        :class:`~repro.telemetry.records.ControlTickRecord`. Policies
        without online prediction (the default) return ``None``;
        implementations may compute lazily — the call is off the untraced
        hot path by construction.
        """
        return None
