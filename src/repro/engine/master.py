"""Framework master: task lifecycle and dependency tracking.

Stand-in for the Pegasus WMS / HTCondor DAG manager: it "guards the order
of task executions" (paper §II-C) by tracking, for every task, how many
parents are still unfinished, and transitioning tasks through their
lifecycle states as the engine reports events. It owns no timing — the
discrete-event simulator drives it.
"""

from __future__ import annotations

import enum

from repro.dag.workflow import Workflow

__all__ = ["FrameworkMaster", "TaskExecState"]


class TaskExecState(enum.Enum):
    """Lifecycle of one task within a run."""

    BLOCKED = "blocked"  # some parent not yet completed
    READY = "ready"  # runnable; waiting in the scheduler queue
    STAGING_IN = "staging_in"  # slot assigned; transferring input
    EXECUTING = "executing"  # computing
    STAGING_OUT = "staging_out"  # transferring output
    COMPLETED = "completed"  # done; children may fire

    @property
    def occupies_slot(self) -> bool:
        """Whether a task in this state holds an instance slot."""
        return self in (
            TaskExecState.STAGING_IN,
            TaskExecState.EXECUTING,
            TaskExecState.STAGING_OUT,
        )


_IN_FLIGHT = (
    TaskExecState.STAGING_IN,
    TaskExecState.EXECUTING,
    TaskExecState.STAGING_OUT,
)


class FrameworkMaster:
    """Tracks task states and readiness for one workflow run."""

    def __init__(self, workflow: Workflow) -> None:
        self.workflow = workflow
        self._state: dict[str, TaskExecState] = {}
        self._unfinished_parents: dict[str, int] = {}
        self._attempts: dict[str, int] = {tid: 0 for tid in workflow.tasks}
        self._completed_count = 0
        for tid in workflow.topological_order():
            parents = workflow.parents(tid)
            self._unfinished_parents[tid] = len(parents)
            self._state[tid] = (
                TaskExecState.READY if not parents else TaskExecState.BLOCKED
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state(self, task_id: str) -> TaskExecState:
        """Current lifecycle state of ``task_id``."""
        return self._state[task_id]

    @property
    def states(self) -> dict[str, TaskExecState]:
        """Read-only view of every task's state (bulk consumers; do not
        mutate — the run-state build reads it once per MAPE tick)."""
        return self._state

    @property
    def completed_count(self) -> int:
        """Number of tasks that have completed so far."""
        return self._completed_count

    def attempts(self, task_id: str) -> int:
        """How many times ``task_id`` has been dispatched."""
        return self._attempts[task_id]

    def initially_ready(self) -> tuple[str, ...]:
        """Root task ids, in topological order — the run's first queue."""
        return self.workflow.roots

    def is_done(self) -> bool:
        """Whether every task has completed."""
        return self._completed_count == len(self.workflow)

    def count(self, state: TaskExecState) -> int:
        """Number of tasks currently in ``state``."""
        return sum(1 for s in self._state.values() if s is state)

    def state_counts(self) -> dict[TaskExecState, int]:
        """Tasks per lifecycle state, in one pass (telemetry snapshot)."""
        counts = dict.fromkeys(TaskExecState, 0)
        for state in self._state.values():
            counts[state] += 1
        return counts

    def in_flight_tasks(self) -> list[str]:
        """Ids of tasks currently occupying slots, sorted."""
        return sorted(
            tid for tid, s in self._state.items() if s in _IN_FLIGHT
        )

    def unstarted_in_stage(self, stage_id: str) -> list[str]:
        """Tasks of ``stage_id`` not yet dispatched (BLOCKED or READY)."""
        stage = self.workflow.stage(stage_id)
        return [
            tid
            for tid in stage.task_ids
            if self._state[tid] in (TaskExecState.BLOCKED, TaskExecState.READY)
        ]

    def stage_completed(self, stage_id: str) -> bool:
        """Whether every task of ``stage_id`` has completed."""
        stage = self.workflow.stage(stage_id)
        return all(
            self._state[tid] is TaskExecState.COMPLETED for tid in stage.task_ids
        )

    # ------------------------------------------------------------------
    # transitions (called by the engine)
    # ------------------------------------------------------------------
    def _expect(self, task_id: str, *allowed: TaskExecState) -> None:
        state = self._state[task_id]
        if state not in allowed:
            raise RuntimeError(
                f"task {task_id!r} is {state.value}, expected one of "
                f"{[s.value for s in allowed]}"
            )

    def mark_dispatched(self, task_id: str) -> None:
        """READY -> STAGING_IN; counts a new attempt."""
        self._expect(task_id, TaskExecState.READY)
        self._state[task_id] = TaskExecState.STAGING_IN
        self._attempts[task_id] += 1

    def mark_executing(self, task_id: str) -> None:
        """STAGING_IN -> EXECUTING."""
        self._expect(task_id, TaskExecState.STAGING_IN)
        self._state[task_id] = TaskExecState.EXECUTING

    def mark_staging_out(self, task_id: str) -> None:
        """EXECUTING -> STAGING_OUT."""
        self._expect(task_id, TaskExecState.EXECUTING)
        self._state[task_id] = TaskExecState.STAGING_OUT

    def mark_completed(self, task_id: str) -> list[str]:
        """STAGING_OUT -> COMPLETED; returns children that just became ready.

        Newly ready children are returned in sorted order for determinism;
        the caller enqueues them with the scheduler.
        """
        self._expect(task_id, TaskExecState.STAGING_OUT)
        self._state[task_id] = TaskExecState.COMPLETED
        self._completed_count += 1
        newly_ready: list[str] = []
        for child in sorted(self.workflow.children(task_id)):
            self._unfinished_parents[child] -= 1
            if self._unfinished_parents[child] == 0:
                self._state[child] = TaskExecState.READY
                newly_ready.append(child)
        return newly_ready

    def mark_killed(self, task_id: str) -> None:
        """Any in-flight state -> READY (the attempt's work is lost).

        Used when the steering policy terminates an instance with running
        tasks (Algorithm 2 line 12: "terminate s_j, resubmit the running
        tasks on s_j"). The caller requeues the task.
        """
        self._expect(task_id, *_IN_FLIGHT)
        self._state[task_id] = TaskExecState.READY
