"""Worker instance model.

Paper §III-A: "Each worker instance is an IaaS VM or container instance
with *l* slots to run tasks. A task consumes a single slot of a worker
instance for some period of occupancy."

Instances here are passive state machines; the discrete-event engine
(:mod:`repro.engine.simulator`) drives their lifecycle transitions, and the
billing model (:mod:`repro.cloud.billing`) interprets their timestamps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive

__all__ = ["Instance", "InstanceState", "InstanceType"]


@dataclass(frozen=True)
class InstanceType:
    """A cloud instance flavor.

    The paper's experiments use ExoGENI ``XOXLarge`` VMs that "can host up
    to four concurrent tasks at a time", which corresponds to
    ``slots=4``. ``speed_factor`` scales task execution time on instances
    of this type (1.0 = nominal) and exists to model the cross-run
    heterogeneity of §II-B; the paper's main experiments use identical
    instances.
    """

    name: str
    slots: int
    price_per_unit: float = 1.0
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance type name must be non-empty")
        if not isinstance(self.slots, int) or self.slots <= 0:
            raise ValueError(f"slots must be a positive int, got {self.slots!r}")
        check_positive("price_per_unit", self.price_per_unit)
        check_positive("speed_factor", self.speed_factor)


# The paper's worker flavor: XOXLarge with 4 task slots.
XO_XLARGE = InstanceType(name="XOXLarge", slots=4)


class InstanceState(enum.Enum):
    """Lifecycle of a worker instance."""

    PENDING = "pending"  # launch requested, not yet usable (within lag)
    RUNNING = "running"  # usable; accruing charges
    TERMINATED = "terminated"  # released; final cost fixed


@dataclass
class Instance:
    """One worker instance and its slot occupancy.

    Timestamps are simulation seconds. ``requested_at`` is when the launch
    was ordered; ``started_at`` is when it became usable (billing starts
    here); ``terminated_at`` is when it was released.
    """

    instance_id: str
    itype: InstanceType
    requested_at: float
    started_at: float | None = None
    terminated_at: float | None = None
    state: InstanceState = InstanceState.PENDING
    # task ids currently occupying slots (length <= itype.slots)
    occupants: set[str] = field(default_factory=set)
    #: accumulated slot-seconds consumed by attempts on this instance;
    #: maintained only when assign/release are called with timestamps
    #: (the engine passes them; standalone unit tests may omit them)
    busy_slot_seconds: float = 0.0
    #: execution-time multiplier for attempts on this instance (>= 1);
    #: stays 1.0 unless cloud-fault injection marks it a straggler
    #: (:mod:`repro.cloud.faults`)
    slowdown: float = 1.0
    #: set when the provider revoked (preempted) this instance, as
    #: opposed to a planned release; billing still stops at
    #: ``terminated_at``, which is the revocation boundary
    revoked: bool = False
    # owning pool, if any; notified on state/slot changes so it can keep
    # its free-slot and task-placement indexes current (set by
    # InstancePool.create, None for standalone instances)
    _pool: object = field(default=None, repr=False, compare=False)
    # per-occupant slot-assignment times backing busy_slot_seconds
    _assign_times: dict[str, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        check_non_negative("requested_at", self.requested_at)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def mark_running(self, now: float) -> None:
        """Transition PENDING -> RUNNING at time ``now``."""
        if self.state is not InstanceState.PENDING:
            raise RuntimeError(
                f"instance {self.instance_id} cannot start from {self.state}"
            )
        if now < self.requested_at:
            raise ValueError("instance cannot start before it was requested")
        self.state = InstanceState.RUNNING
        self.started_at = now
        if self._pool is not None:
            self._pool._on_instance_state(self)  # type: ignore[attr-defined]

    def mark_terminated(self, now: float) -> None:
        """Transition to TERMINATED at time ``now``.

        Callers must have already vacated or requeued occupant tasks;
        terminating with occupants is a programming error.
        """
        if self.state is InstanceState.TERMINATED:
            raise RuntimeError(f"instance {self.instance_id} already terminated")
        if self.occupants:
            raise RuntimeError(
                f"instance {self.instance_id} terminated with occupants "
                f"{sorted(self.occupants)}"
            )
        if self.started_at is not None and now < self.started_at:
            raise ValueError("instance cannot terminate before it started")
        self.state = InstanceState.TERMINATED
        self.terminated_at = now
        if self._pool is not None:
            self._pool._on_instance_state(self)  # type: ignore[attr-defined]

    def cancel_pending(self) -> None:
        """PENDING -> TERMINATED for an instance that never became usable.

        The instance is never billed; ``terminated_at`` collapses onto
        ``requested_at`` so billing sees zero uptime.
        """
        if self.state is not InstanceState.PENDING:
            raise RuntimeError(
                f"instance {self.instance_id} cannot cancel from {self.state}"
            )
        self.state = InstanceState.TERMINATED
        self.terminated_at = self.requested_at
        if self._pool is not None:
            self._pool._on_instance_state(self)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # slots
    # ------------------------------------------------------------------
    @property
    def free_slots(self) -> int:
        """Number of currently unoccupied slots (0 unless RUNNING)."""
        if self.state is not InstanceState.RUNNING:
            return 0
        return self.itype.slots - len(self.occupants)

    def assign(self, task_id: str, now: float | None = None) -> None:
        """Occupy one slot with ``task_id``.

        ``now`` opts into busy-time accounting: a matched pair of timed
        ``assign``/``release`` calls adds the slot-occupancy interval to
        :attr:`busy_slot_seconds` (the telemetry idle-fraction basis).
        """
        if self.state is not InstanceState.RUNNING:
            raise RuntimeError(
                f"cannot assign task to {self.state.value} instance "
                f"{self.instance_id}"
            )
        if task_id in self.occupants:
            raise RuntimeError(f"task {task_id} already on {self.instance_id}")
        if self.free_slots <= 0:
            raise RuntimeError(f"instance {self.instance_id} has no free slot")
        self.occupants.add(task_id)
        if now is not None:
            self._assign_times[task_id] = now
        if self._pool is not None:
            self._pool._on_assign(self, task_id)  # type: ignore[attr-defined]

    def release(self, task_id: str, now: float | None = None) -> None:
        """Vacate the slot held by ``task_id``."""
        try:
            self.occupants.remove(task_id)
        except KeyError:
            raise RuntimeError(
                f"task {task_id} does not occupy instance {self.instance_id}"
            ) from None
        assigned_at = self._assign_times.pop(task_id, None)
        if now is not None and assigned_at is not None:
            self.busy_slot_seconds += max(0.0, now - assigned_at)
        if self._pool is not None:
            self._pool._on_release(self, task_id)  # type: ignore[attr-defined]

    def uptime(self, now: float) -> float:
        """Seconds of billable uptime as of ``now`` (0 if never started)."""
        if self.started_at is None:
            return 0.0
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, end - self.started_at)
