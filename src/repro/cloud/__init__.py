"""Simulated IaaS cloud substrate.

Stands in for the paper's ExoGENI network cloud: typed worker instances
with task slots, provisioning lag, charging-unit billing, and site capacity
caps. WIRE only ever observes the cloud through these abstractions, which
is what makes the substitution behaviour-preserving (see DESIGN.md).
"""

from repro.cloud.billing import BillingModel
from repro.cloud.faults import (
    NO_CHAOS,
    ChaosInjector,
    ChaosSpec,
    RetryPolicy,
    parse_chaos_spec,
)
from repro.cloud.instance import XO_XLARGE, Instance, InstanceState, InstanceType
from repro.cloud.pool import InstancePool
from repro.cloud.provisioner import LaunchOrder, Provisioner
from repro.cloud.site import CloudSite, exogeni_site

__all__ = [
    "BillingModel",
    "ChaosInjector",
    "ChaosSpec",
    "CloudSite",
    "Instance",
    "InstancePool",
    "InstanceState",
    "InstanceType",
    "LaunchOrder",
    "NO_CHAOS",
    "Provisioner",
    "RetryPolicy",
    "XO_XLARGE",
    "exogeni_site",
    "parse_chaos_spec",
]
