"""Provisioning with lag.

The provisioner turns pool-resize orders into instance lifecycle plans:
launches become usable one lag later (paper §III-A), terminations take
effect at a caller-chosen time (WIRE schedules them at the instance's
charge boundary to avoid the recharge cost, Algorithm 2).

The provisioner itself is engine-agnostic: it mutates pool membership and
returns *when* each transition should happen; the discrete-event engine
schedules the corresponding events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import Instance, InstanceState
from repro.cloud.pool import InstancePool
from repro.cloud.site import CloudSite

__all__ = ["LaunchOrder", "Provisioner"]


@dataclass(frozen=True)
class LaunchOrder:
    """A planned instance launch: usable at ``ready_at``."""

    instance: Instance
    ready_at: float


class Provisioner:
    """Orders launches and terminations against a site's capacity."""

    def __init__(self, site: CloudSite, pool: InstancePool) -> None:
        self.site = site
        self.pool = pool

    def order_launches(self, count: int, now: float) -> list[LaunchOrder]:
        """Order up to ``count`` launches, truncated to site capacity.

        Capacity counts PENDING and RUNNING instances — an ordered launch
        consumes capacity immediately even though it is not yet usable.
        Returns the accepted orders; each instance becomes usable at
        ``now + site.lag``.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        headroom = self.site.max_instances - self.pool.active_size()
        accepted = max(0, min(count, headroom))
        ready_at = now + self.site.lag
        return [
            LaunchOrder(instance=self.pool.create(now), ready_at=ready_at)
            for _ in range(accepted)
        ]

    def can_terminate(self, instance: Instance) -> bool:
        """Whether ``instance`` is in a state that permits termination."""
        return instance.state is InstanceState.RUNNING and (
            self.pool.active_size() > self.site.min_instances
        )

    def validate_termination(self, instance: Instance, at: float, now: float) -> float:
        """Check a termination order and return its effective time.

        ``at`` must not precede ``now``; terminating a non-RUNNING instance
        or shrinking below the site floor is rejected.
        """
        if not self.can_terminate(instance):
            raise RuntimeError(
                f"instance {instance.instance_id} cannot be terminated "
                f"(state={instance.state.value}, pool={self.pool.active_size()}, "
                f"floor={self.site.min_instances})"
            )
        if at < now:
            raise ValueError(
                f"termination time {at} precedes current time {now}"
            )
        return at
