"""Cloud-side messaging protocol (ExoGENI client stand-in).

The paper's prototype talks to the cloud through a messaging protocol
(§III-F: 227 lines of Python in Pegasus plus 706 lines of Java in the
ExoGENI client). This module reproduces that control plane: typed,
JSON-serializable request/reply messages, a :class:`CloudBroker` that
executes them against a site's provisioner, and a
:class:`MessagingClient` that exposes a provisioner-like API while
round-tripping every call through the wire encoding — so anything the
controller needs is guaranteed to be expressible in messages.

ExoGENI is lease-based; the vocabulary follows suit: a *lease request*
asks for instances, a *lease grant* names the instances and when they
will be usable, a *release request* schedules a termination.
"""

from __future__ import annotations

import json
import itertools
from dataclasses import asdict, dataclass, field
from typing import ClassVar

from repro.cloud.provisioner import Provisioner

__all__ = [
    "CloudBroker",
    "ErrorReply",
    "LeaseGrant",
    "LeaseRequest",
    "Message",
    "MessagingClient",
    "PoolStatus",
    "PoolStatusRequest",
    "ProtocolError",
    "ReleaseAck",
    "ReleaseRequest",
    "decode",
    "encode",
]


class ProtocolError(RuntimeError):
    """Raised by the client when the broker reports an error."""


@dataclass(frozen=True)
class Message:
    """Base class; subclasses register themselves by ``TYPE``."""

    TYPE: ClassVar[str] = "message"
    _registry: ClassVar[dict[str, type["Message"]]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        Message._registry[cls.TYPE] = cls


@dataclass(frozen=True)
class LeaseRequest(Message):
    """Ask the cloud for ``count`` instances at time ``now``."""

    TYPE: ClassVar[str] = "lease_request"
    request_id: int
    now: float
    count: int


@dataclass(frozen=True)
class LeaseGrant(Message):
    """The cloud's answer: which instances, usable when.

    ``granted`` may be shorter than the requested count when the site
    capacity truncates the lease (the controller must handle this, as on
    real ExoGENI).
    """

    TYPE: ClassVar[str] = "lease_grant"
    request_id: int
    instance_ids: tuple[str, ...]
    ready_at: float


@dataclass(frozen=True)
class ReleaseRequest(Message):
    """Schedule ``instance_id``'s termination at time ``at``."""

    TYPE: ClassVar[str] = "release_request"
    request_id: int
    now: float
    instance_id: str
    at: float


@dataclass(frozen=True)
class ReleaseAck(Message):
    """Release accepted; effective at ``at``."""

    TYPE: ClassVar[str] = "release_ack"
    request_id: int
    instance_id: str
    at: float


@dataclass(frozen=True)
class PoolStatusRequest(Message):
    """Ask for the current pool composition."""

    TYPE: ClassVar[str] = "pool_status_request"
    request_id: int


@dataclass(frozen=True)
class PoolStatus(Message):
    """Pool composition snapshot."""

    TYPE: ClassVar[str] = "pool_status"
    request_id: int
    running: tuple[str, ...]
    pending: tuple[str, ...]
    capacity: int


@dataclass(frozen=True)
class ErrorReply(Message):
    """The broker could not satisfy a request."""

    TYPE: ClassVar[str] = "error"
    request_id: int
    reason: str


def encode(message: Message) -> str:
    """Serialize a message to its JSON wire form."""
    payload = asdict(message)
    payload["type"] = message.TYPE
    return json.dumps(payload, sort_keys=True)


def decode(text: str) -> Message:
    """Parse a JSON wire form back into a typed message."""
    payload = json.loads(text)
    try:
        message_type = payload.pop("type")
    except KeyError:
        raise ValueError("message without type field") from None
    cls = Message._registry.get(message_type)
    if cls is None:
        raise ValueError(f"unknown message type {message_type!r}")
    for key, value in payload.items():
        if isinstance(value, list):
            payload[key] = tuple(value)
    return cls(**payload)


class CloudBroker:
    """Server side: executes protocol messages against the provisioner.

    Every handled message (request and reply) is appended to
    :attr:`log` in wire form — the debugging trail operators of the real
    system rely on.
    """

    def __init__(self, provisioner: Provisioner) -> None:
        self.provisioner = provisioner
        self.log: list[str] = []

    def handle(self, wire: str) -> str:
        """Process one encoded request; return the encoded reply."""
        self.log.append(wire)
        reply = self._dispatch(decode(wire))
        encoded = encode(reply)
        self.log.append(encoded)
        return encoded

    def _dispatch(self, message: Message) -> Message:
        if isinstance(message, LeaseRequest):
            if message.count < 0:
                return ErrorReply(
                    request_id=message.request_id,
                    reason=f"invalid lease count {message.count}",
                )
            orders = self.provisioner.order_launches(message.count, message.now)
            ready_at = orders[0].ready_at if orders else (
                message.now + self.provisioner.site.lag
            )
            return LeaseGrant(
                request_id=message.request_id,
                instance_ids=tuple(o.instance.instance_id for o in orders),
                ready_at=ready_at,
            )
        if isinstance(message, ReleaseRequest):
            pool = self.provisioner.pool
            try:
                instance = pool.get(message.instance_id)
            except KeyError:
                return ErrorReply(
                    request_id=message.request_id,
                    reason=f"unknown instance {message.instance_id}",
                )
            try:
                effective = self.provisioner.validate_termination(
                    instance, at=message.at, now=message.now
                )
            except (RuntimeError, ValueError) as exc:
                return ErrorReply(request_id=message.request_id, reason=str(exc))
            return ReleaseAck(
                request_id=message.request_id,
                instance_id=message.instance_id,
                at=effective,
            )
        if isinstance(message, PoolStatusRequest):
            pool = self.provisioner.pool
            return PoolStatus(
                request_id=message.request_id,
                running=tuple(i.instance_id for i in pool.running()),
                pending=tuple(i.instance_id for i in pool.pending()),
                capacity=self.provisioner.site.max_instances,
            )
        return ErrorReply(
            request_id=getattr(message, "request_id", -1),
            reason=f"unexpected message type {message.TYPE!r}",
        )


class MessagingClient:
    """Client side: a provisioner-like API over the wire protocol.

    Every call encodes a request, sends it through the broker, and
    decodes the reply — proving the protocol is sufficient for the
    controller's needs. Replies with mismatched request ids or error
    payloads raise :class:`ProtocolError`.
    """

    def __init__(self, broker: CloudBroker) -> None:
        self.broker = broker
        self._ids = itertools.count(1)

    def _roundtrip(self, request: Message) -> Message:
        reply = decode(self.broker.handle(encode(request)))
        request_id = getattr(request, "request_id")
        if getattr(reply, "request_id", None) != request_id:
            raise ProtocolError(
                f"reply correlates to {getattr(reply, 'request_id', None)}, "
                f"expected {request_id}"
            )
        if isinstance(reply, ErrorReply):
            raise ProtocolError(reply.reason)
        return reply

    def lease(self, count: int, now: float) -> LeaseGrant:
        """Request ``count`` instances; returns the (possibly truncated)
        grant."""
        request = LeaseRequest(request_id=next(self._ids), now=now, count=count)
        reply = self._roundtrip(request)
        assert isinstance(reply, LeaseGrant)
        return reply

    def release(self, instance_id: str, at: float, now: float) -> ReleaseAck:
        """Schedule a release; raises :class:`ProtocolError` if refused."""
        request = ReleaseRequest(
            request_id=next(self._ids), now=now, instance_id=instance_id, at=at
        )
        reply = self._roundtrip(request)
        assert isinstance(reply, ReleaseAck)
        return reply

    def pool_status(self) -> PoolStatus:
        """Snapshot the pool composition."""
        request = PoolStatusRequest(request_id=next(self._ids))
        reply = self._roundtrip(request)
        assert isinstance(reply, PoolStatus)
        return reply
