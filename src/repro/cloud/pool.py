"""Worker instance pool.

Tracks the set of instances a workflow run has requested, running, and
terminated, and aggregates their billing. The pool is the object WIRE's
resource-steering policy resizes (paper §III-A: "WIRE auto-scales the pool
of cloud worker instances allocated to a workflow").
"""

from __future__ import annotations

from typing import Iterator

from repro.cloud.billing import BillingModel
from repro.cloud.instance import Instance, InstanceState, InstanceType

__all__ = ["InstancePool"]


class InstancePool:
    """All instances ever allocated to a run, with billing aggregation."""

    def __init__(self, itype: InstanceType, billing: BillingModel) -> None:
        self.itype = itype
        self.billing = billing
        self._instances: dict[str, Instance] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def create(self, now: float) -> Instance:
        """Register a newly requested (PENDING) instance."""
        self._counter += 1
        instance = Instance(
            instance_id=f"vm-{self._counter:04d}",
            itype=self.itype,
            requested_at=now,
        )
        self._instances[instance.instance_id] = instance
        return instance

    def get(self, instance_id: str) -> Instance:
        """Return the instance with ``instance_id``."""
        return self._instances[instance_id]

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def running(self) -> list[Instance]:
        """RUNNING instances, ordered by id (deterministic)."""
        return self._select(InstanceState.RUNNING)

    def pending(self) -> list[Instance]:
        """PENDING (launch ordered, not yet usable) instances."""
        return self._select(InstanceState.PENDING)

    def active_size(self) -> int:
        """Pool size as the steering policy sees it: running + pending.

        Pending instances count because a launch already ordered will join
        the pool at the next interval; ignoring them would double-order.
        """
        return len(self.running()) + len(self.pending())

    def _select(self, state: InstanceState) -> list[Instance]:
        return sorted(
            (i for i in self._instances.values() if i.state is state),
            key=lambda i: i.instance_id,
        )

    def free_slots(self) -> int:
        """Total free slots across RUNNING instances."""
        return sum(i.free_slots for i in self.running())

    def total_slots(self) -> int:
        """Total slots across RUNNING instances."""
        return sum(i.itype.slots for i in self.running())

    def instance_of_task(self, task_id: str) -> Instance | None:
        """The RUNNING instance whose slot ``task_id`` occupies, if any."""
        for instance in self._instances.values():
            if task_id in instance.occupants:
                return instance
        return None

    # ------------------------------------------------------------------
    # billing aggregation
    # ------------------------------------------------------------------
    def total_units(self, now: float) -> int:
        """Total charging units billed across all instances as of ``now``."""
        return sum(self.billing.units_charged(i, now) for i in self._instances.values())

    def total_cost(self, now: float) -> float:
        """Total monetary cost across all instances as of ``now``."""
        return sum(self.billing.cost(i, now) for i in self._instances.values())

    def total_wasted_time(self, now: float) -> float:
        """Total paid-but-unused seconds across all instances."""
        return sum(
            self.billing.wasted_time(i, now) for i in self._instances.values()
        )
