"""Worker instance pool.

Tracks the set of instances a workflow run has requested, running, and
terminated, and aggregates their billing. The pool is the object WIRE's
resource-steering policy resizes (paper §III-A: "WIRE auto-scales the pool
of cloud worker instances allocated to a workflow").

The pool also maintains three incremental indexes that the engine's
dispatch hot path relies on (instances notify the pool on every state or
slot change, see :class:`~repro.cloud.instance.Instance`):

- *free-slot buckets*: RUNNING instances grouped by free-slot count, so
  best-fit ("fullest first") dispatch avoids scanning every instance
  ever launched;
- a *task placement map* (task id -> instance), replacing the per-event
  full-pool scan of ``instance_of_task``;
- live RUNNING / PENDING id sets for O(1) pool-size queries.
"""

from __future__ import annotations

from typing import Collection, Iterator

from repro.cloud.billing import BillingModel
from repro.cloud.instance import Instance, InstanceState, InstanceType

__all__ = ["InstancePool"]


class InstancePool:
    """All instances ever allocated to a run, with billing aggregation."""

    def __init__(self, itype: InstanceType, billing: BillingModel) -> None:
        self.itype = itype
        self.billing = billing
        self._instances: dict[str, Instance] = {}
        self._counter = 0
        # incremental indexes (maintained via instance notifications)
        self._running_ids: set[str] = set()
        self._pending_ids: set[str] = set()
        #: free-slot count -> ids of RUNNING instances with that many free
        self._buckets: dict[int, set[str]] = {}
        self._task_instance: dict[str, str] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def create(self, now: float) -> Instance:
        """Register a newly requested (PENDING) instance."""
        self._counter += 1
        instance = Instance(
            instance_id=f"vm-{self._counter:04d}",
            itype=self.itype,
            requested_at=now,
        )
        instance._pool = self
        self._instances[instance.instance_id] = instance
        self._pending_ids.add(instance.instance_id)
        return instance

    def get(self, instance_id: str) -> Instance:
        """Return the instance with ``instance_id``."""
        return self._instances[instance_id]

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    # ------------------------------------------------------------------
    # index maintenance (instance notification callbacks)
    # ------------------------------------------------------------------
    def _bucket_put(self, instance: Instance) -> None:
        free = instance.free_slots
        if free > 0:
            self._buckets.setdefault(free, set()).add(instance.instance_id)

    def _bucket_remove(self, instance: Instance, free: int) -> None:
        bucket = self._buckets.get(free)
        if bucket is not None:
            bucket.discard(instance.instance_id)

    def _on_instance_state(self, instance: Instance) -> None:
        iid = instance.instance_id
        if instance.state is InstanceState.RUNNING:
            self._pending_ids.discard(iid)
            self._running_ids.add(iid)
            self._bucket_put(instance)
        elif instance.state is InstanceState.TERMINATED:
            self._pending_ids.discard(iid)
            self._running_ids.discard(iid)
            self._bucket_remove(instance, instance.itype.slots - len(instance.occupants))

    def _on_assign(self, instance: Instance, task_id: str) -> None:
        self._task_instance[task_id] = instance.instance_id
        self._bucket_remove(instance, instance.free_slots + 1)
        self._bucket_put(instance)

    def _on_release(self, instance: Instance, task_id: str) -> None:
        self._task_instance.pop(task_id, None)
        self._bucket_remove(instance, instance.free_slots - 1)
        if instance.state is InstanceState.RUNNING:
            self._bucket_put(instance)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def running(self) -> list[Instance]:
        """RUNNING instances, ordered by id (deterministic)."""
        return [self._instances[iid] for iid in sorted(self._running_ids)]

    def pending(self) -> list[Instance]:
        """PENDING (launch ordered, not yet usable) instances."""
        return [self._instances[iid] for iid in sorted(self._pending_ids)]

    def running_count(self) -> int:
        """Number of RUNNING instances (O(1))."""
        return len(self._running_ids)

    def active_size(self) -> int:
        """Pool size as the steering policy sees it: running + pending.

        Pending instances count because a launch already ordered will join
        the pool at the next interval; ignoring them would double-order.
        """
        return len(self._running_ids) + len(self._pending_ids)

    def free_slots(self) -> int:
        """Total free slots across RUNNING instances."""
        return sum(
            free * len(bucket) for free, bucket in self._buckets.items()
        )

    def total_slots(self) -> int:
        """Total slots across RUNNING instances."""
        return len(self._running_ids) * self.itype.slots

    def instance_of_task(self, task_id: str) -> Instance | None:
        """The RUNNING instance whose slot ``task_id`` occupies, if any."""
        iid = self._task_instance.get(task_id)
        if iid is None:
            return None
        return self._instances[iid]

    def best_dispatchable(self, excluded: Collection[str] = ()) -> Instance | None:
        """Fullest RUNNING instance with a free slot, lowest id first.

        ``excluded`` filters ids (the engine passes its draining set).
        Packing tightly (fewest free slots first) keeps marginal instances
        empty so the steering policy can release them cheaply. Equivalent
        to ``min(candidates, key=lambda i: (i.free_slots, i.instance_id))``
        over the running non-excluded instances with a free slot, but
        served from the free-slot buckets instead of a full pool scan.
        """
        for free in range(1, self.itype.slots + 1):
            bucket = self._buckets.get(free)
            if not bucket:
                continue
            best: str | None = None
            for iid in bucket:
                if iid in excluded:
                    continue
                if best is None or iid < best:
                    best = iid
            if best is not None:
                return self._instances[best]
        return None

    # ------------------------------------------------------------------
    # billing aggregation
    # ------------------------------------------------------------------
    def instance_utilization(
        self, instance: Instance, now: float
    ) -> tuple[int, float, float, float | None, float]:
        """Billing/usage summary of one instance, for telemetry.

        Returns ``(units_charged, paid_seconds, busy_slot_seconds,
        idle_fraction, wasted_seconds)``. ``idle_fraction`` is
        ``1 - busy / (paid * slots)`` — the share of paid slot capacity
        that went unused — or ``None`` for a never-billed instance.
        Busy time relies on the engine's timed ``assign``/``release``
        calls (see :meth:`~repro.cloud.instance.Instance.assign`).
        """
        units = self.billing.units_charged(instance, now)
        paid_seconds = units * self.billing.charging_unit
        busy = instance.busy_slot_seconds
        paid_slot_seconds = paid_seconds * instance.itype.slots
        idle = (
            max(0.0, 1.0 - busy / paid_slot_seconds)
            if paid_slot_seconds > 0
            else None
        )
        return (
            units,
            paid_seconds,
            busy,
            idle,
            self.billing.wasted_time(instance, now),
        )

    def total_units(self, now: float) -> int:
        """Total charging units billed across all instances as of ``now``."""
        return sum(self.billing.units_charged(i, now) for i in self._instances.values())

    def total_cost(self, now: float) -> float:
        """Total monetary cost across all instances as of ``now``."""
        return sum(self.billing.cost(i, now) for i in self._instances.values())

    def total_wasted_time(self, now: float) -> float:
        """Total paid-but-unused seconds across all instances."""
        return sum(
            self.billing.wasted_time(i, now) for i in self._instances.values()
        )
