"""Cloud site description.

Paper §IV-B: "An experiment is on an ExoGENI site and has 1–12 worker
instances (the max number of the worker instances a site can provide). An
instance is an XOXLarge ExoGENI VM instance and can host up to four
concurrent tasks at a time. ... the VM instantiation time is ~3 minutes
(the lag time)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import XO_XLARGE, InstanceType
from repro.util.validation import check_positive

__all__ = ["CloudSite", "exogeni_site"]


@dataclass(frozen=True)
class CloudSite:
    """Static description of one IaaS site.

    Parameters
    ----------
    itype:
        The (single) worker instance flavor the site rents. The paper runs
        each experiment on identically provisioned instances (§III-A).
    max_instances:
        Site capacity cap; launch orders beyond it are truncated.
    lag:
        Provisioning lag *t* in seconds — the maximum delay to launch or
        release an instance (§III-A). WIRE's MAPE period equals this lag.
    min_instances:
        Floor on the pool size; the steering policy never shrinks below it
        (the framework master itself needs somewhere to run, and
        Algorithm 3 line 28 always plans at least one instance while work
        remains).
    """

    name: str
    itype: InstanceType
    max_instances: int
    lag: float
    min_instances: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if not isinstance(self.max_instances, int) or self.max_instances <= 0:
            raise ValueError(
                f"max_instances must be a positive int, got {self.max_instances!r}"
            )
        if (
            not isinstance(self.min_instances, int)
            or not 0 <= self.min_instances <= self.max_instances
        ):
            raise ValueError(
                "min_instances must be an int in [0, max_instances], got "
                f"{self.min_instances!r}"
            )
        check_positive("lag", self.lag)


def exogeni_site(
    *,
    max_instances: int = 12,
    lag: float = 180.0,
    itype: InstanceType = XO_XLARGE,
) -> CloudSite:
    """The paper's evaluation site: 12 XOXLarge VMs, ~3-minute lag."""
    return CloudSite(
        name="exogeni",
        itype=itype,
        max_instances=max_instances,
        lag=lag,
    )
