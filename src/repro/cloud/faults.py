"""Cloud-level fault injection.

The task-level fault models (:mod:`repro.engine.faults`) kill individual
attempts; on a real IaaS site the *cloud itself* also fails. Ilyushkin et
al. show autoscaler rankings invert under exactly these conditions, and
the Bader et al. survey flags failure-aware prediction as an open gap
(PAPERS.md), so this module models the cloud failure classes a WIRE
deployment would face:

- **instance revocation** (spot-style preemption): a RUNNING instance is
  killed by the provider; every attempt on it is requeued and billing
  stops at the revocation boundary;
- **provisioning failures**: an ordered launch comes back failed after
  its lag instead of usable, and is retried with configurable backoff;
- **provisioning timeouts**: a launch becomes usable only after a
  multiple of the nominal lag;
- **straggler instances**: a per-instance slowdown factor multiplies
  every execution time realized on it;
- **monitor blackouts**: control ticks whose kickstart records are
  delayed (or dropped), starving the online predictor.

A :class:`ChaosSpec` is pure configuration; the engine owns a
:class:`ChaosInjector` that turns it into concrete draws from a
dedicated ``"chaos"`` RNG sub-stream (:mod:`repro.util.rng`), so chaos
runs are a pure function of ``(seed, spec)`` and a disabled spec leaves
every other stream — and therefore the run — bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = [
    "NO_CHAOS",
    "ChaosInjector",
    "ChaosSpec",
    "RetryPolicy",
    "parse_chaos_spec",
]

#: seconds per hour — revocation rates are quoted per instance-hour
_HOUR = 3600.0


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for re-issuing failed provisioning requests.

    After the *n*-th failed attempt the pool waits
    ``backoff * multiplier**(n-1)`` seconds before ordering a replacement
    (then the provisioning lag applies again); after ``max_retries``
    failed retries the order is abandoned and the MAPE loop is left to
    re-plan capacity on a later tick.
    """

    max_retries: int = 3
    backoff: float = 30.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be an int >= 0, got {self.max_retries!r}"
            )
        check_positive("backoff", self.backoff)
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before the retry that follows failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff * self.multiplier ** (attempt - 1)


@dataclass(frozen=True)
class ChaosSpec:
    """Cloud-fault configuration for one run (all features default off).

    Parameters
    ----------
    revocation_rate:
        Expected revocations per instance-hour. Each instance draws an
        exponential time-to-revocation when it becomes RUNNING.
    provision_failure:
        Probability that an ordered launch fails: after the provisioning
        lag the order comes back failed instead of usable. The pool
        retries it under ``retry``.
    provision_failure_until:
        When set, provisioning failures are injected only before this
        simulation time — the knob the convergence tests (and outage
        scenarios) use to model a failure window that ends.
    provision_timeout:
        Probability that a (non-failed) launch is delayed: it becomes
        usable after ``lag * provision_timeout_factor`` instead of
        ``lag``.
    provision_timeout_factor:
        Lag multiplier for timed-out launches (>= 1).
    straggler_probability:
        Probability that a freshly provisioned instance is a straggler.
    straggler_slowdown:
        Execution-time multiplier on straggler instances (>= 1); the
        runtime model's durations are stretched by this factor there.
    blackout_probability:
        Probability that a control tick's kickstart records are missing,
        starving the predictor for that MAPE iteration.
    blackout_drops:
        When False (default) blacked-out records are *delayed*: the next
        clear tick observes the whole starved window. When True they are
        *dropped*: the starved windows are never observed.
    retry:
        Backoff policy for re-issuing failed provisioning orders.
    """

    revocation_rate: float = 0.0
    provision_failure: float = 0.0
    provision_failure_until: float | None = None
    provision_timeout: float = 0.0
    provision_timeout_factor: float = 3.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 2.0
    blackout_probability: float = 0.0
    blackout_drops: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        check_non_negative("revocation_rate", self.revocation_rate)
        check_in_range("provision_failure", self.provision_failure, 0.0, 1.0)
        if self.provision_failure_until is not None:
            check_non_negative(
                "provision_failure_until", self.provision_failure_until
            )
        check_in_range("provision_timeout", self.provision_timeout, 0.0, 1.0)
        if self.provision_timeout_factor < 1.0:
            raise ValueError(
                "provision_timeout_factor must be >= 1, got "
                f"{self.provision_timeout_factor!r}"
            )
        check_in_range(
            "straggler_probability", self.straggler_probability, 0.0, 1.0
        )
        if self.straggler_slowdown < 1.0:
            raise ValueError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown!r}"
            )
        check_in_range(
            "blackout_probability", self.blackout_probability, 0.0, 1.0
        )

    @property
    def enabled(self) -> bool:
        """Whether any fault class is active.

        A disabled spec is contractually zero-cost: the engine skips all
        chaos wiring (no RNG sub-stream, no events, no extra draws) and
        the run is bit-identical to one with no chaos argument at all —
        ``tools/gen_golden_engine.py --check --no-chaos`` enforces this.
        """
        return (
            self.revocation_rate > 0.0
            or self.provision_failure > 0.0
            or self.provision_timeout > 0.0
            or self.straggler_probability > 0.0
            or self.blackout_probability > 0.0
        )

    def label(self) -> str:
        """Compact identifier for experiment rows and file names."""
        if not self.enabled:
            return "none"
        parts: list[str] = []
        if self.revocation_rate > 0:
            parts.append(f"rev{self.revocation_rate:g}")
        if self.provision_failure > 0:
            parts.append(f"pfail{self.provision_failure:g}")
        if self.provision_timeout > 0:
            parts.append(f"ptime{self.provision_timeout:g}")
        if self.straggler_probability > 0:
            parts.append(
                f"strag{self.straggler_probability:g}"
                f"x{self.straggler_slowdown:g}"
            )
        if self.blackout_probability > 0:
            parts.append(f"blackout{self.blackout_probability:g}")
        return "+".join(parts)


#: the canonical disabled spec (bit-identical to passing no spec at all)
NO_CHAOS = ChaosSpec()


class ChaosInjector:
    """Turns a :class:`ChaosSpec` into concrete fault draws for one run.

    Draws are made in a fixed, documented order (straggler roll then
    revocation sample per instance start; one outcome roll per launch
    order; one blackout roll per control tick) and only for fault classes
    that are enabled, so a run is reproducible from ``(seed, spec)``.
    """

    def __init__(self, spec: ChaosSpec, rng: np.random.Generator) -> None:
        if not spec.enabled:
            raise ValueError("ChaosInjector requires an enabled ChaosSpec")
        self.spec = spec
        self._rng = rng

    # -- per instance start -------------------------------------------
    def straggler_factor(self) -> float:
        """Slowdown factor for a freshly provisioned instance (1.0 = none)."""
        spec = self.spec
        if spec.straggler_probability <= 0.0:
            return 1.0
        if float(self._rng.random()) < spec.straggler_probability:
            return spec.straggler_slowdown
        return 1.0

    def revocation_delay(self) -> float | None:
        """Seconds after start at which the instance is revoked, or None."""
        rate = self.spec.revocation_rate
        if rate <= 0.0:
            return None
        return float(self._rng.exponential(_HOUR / rate))

    # -- per launch order ---------------------------------------------
    def provision_outcome(self, now: float) -> str:
        """Fate of one ordered launch: ``"ok"``, ``"fail"``, ``"timeout"``."""
        spec = self.spec
        if spec.provision_failure > 0.0 and (
            spec.provision_failure_until is None
            or now < spec.provision_failure_until
        ):
            if float(self._rng.random()) < spec.provision_failure:
                return "fail"
        if spec.provision_timeout > 0.0:
            if float(self._rng.random()) < spec.provision_timeout:
                return "timeout"
        return "ok"

    # -- per control tick ---------------------------------------------
    def blackout(self) -> bool:
        """Whether this tick's kickstart records are missing."""
        p = self.spec.blackout_probability
        if p <= 0.0:
            return False
        return float(self._rng.random()) < p


# ----------------------------------------------------------------------
# CLI parsing
# ----------------------------------------------------------------------
_PARSE_KEYS = {
    "revocations": ("revocation_rate", float),
    "revocation-rate": ("revocation_rate", float),
    "pfail": ("provision_failure", float),
    "provision-failure": ("provision_failure", float),
    "pfail-until": ("provision_failure_until", float),
    "ptimeout": ("provision_timeout", float),
    "provision-timeout": ("provision_timeout", float),
    "timeout-factor": ("provision_timeout_factor", float),
    "stragglers": ("straggler_probability", float),
    "straggler-probability": ("straggler_probability", float),
    "slowdown": ("straggler_slowdown", float),
    "straggler-slowdown": ("straggler_slowdown", float),
    "blackouts": ("blackout_probability", float),
    "blackout-probability": ("blackout_probability", float),
    "drop-records": ("blackout_drops", None),
    "retries": ("max_retries", int),
    "backoff": ("backoff", float),
    "backoff-multiplier": ("multiplier", float),
}

_RETRY_FIELDS = {"max_retries", "backoff", "multiplier"}


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse the CLI's ``--chaos`` argument into a :class:`ChaosSpec`.

    The format is comma-separated ``key=value`` pairs, e.g.::

        revocations=0.5,stragglers=0.2,slowdown=3,blackouts=0.1
        pfail=0.3,pfail-until=1800,retries=4,backoff=60

    ``drop-records`` is a bare flag (no value). An empty string yields
    :data:`NO_CHAOS`.
    """
    fields: dict[str, object] = {}
    retry: dict[str, object] = {}
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip().lower()
        if key not in _PARSE_KEYS:
            known = ", ".join(sorted(_PARSE_KEYS))
            raise ValueError(
                f"unknown chaos key {key!r}; choose from: {known}"
            )
        name, cast = _PARSE_KEYS[key]
        if cast is None:  # bare boolean flag
            if value:
                raise ValueError(f"chaos key {key!r} takes no value")
            parsed: object = True
        else:
            if not value:
                raise ValueError(f"chaos key {key!r} needs a value")
            try:
                parsed = cast(value.strip())
            except ValueError:
                raise ValueError(
                    f"invalid value {value.strip()!r} for chaos key {key!r}"
                ) from None
        if name in _RETRY_FIELDS:
            retry[name] = parsed
        else:
            fields[name] = parsed
    if retry:
        fields["retry"] = RetryPolicy(**retry)  # type: ignore[arg-type]
    return ChaosSpec(**fields)  # type: ignore[arg-type]
