"""Charging-unit billing.

Paper §III-A: "the cloud provider rents the instances of each type at some
given price per fixed unit of time — a *charging unit* of length u." An
instance is charged for every charging unit it enters: billing starts when
the instance becomes usable, a new unit is charged the moment the previous
one expires, and terminating mid-unit forfeits the remainder (the paper's
"recharge cost" that Algorithm 2 avoids by releasing instances just before
their unit expires).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.instance import Instance
from repro.util.validation import check_positive

__all__ = ["BillingModel"]

# Tolerance for charge-boundary comparisons. Simulation times are sums of
# floats; an instance terminated "exactly" at a unit boundary may land a few
# ulps past it, which must not incur a whole extra unit.
_BOUNDARY_EPS = 1e-9


@dataclass(frozen=True)
class BillingModel:
    """Per-charging-unit billing for one instance type's price.

    Parameters
    ----------
    charging_unit:
        Unit length *u* in seconds. The paper evaluates
        u in {60, 900, 1800, 3600} (1/15/30/60 minutes).
    """

    charging_unit: float

    def __post_init__(self) -> None:
        check_positive("charging_unit", self.charging_unit)

    def units_charged(self, instance: Instance, now: float) -> int:
        """Charging units billed to ``instance`` as of ``now``.

        An instance that never started costs nothing. Otherwise the
        convention is the paper's "recharge" framing, boundary included
        (it matches :meth:`time_to_next_charge` exactly):

        - a *running* instance is charged for every unit it has entered —
          at the exact boundary ``t = started_at + k*u`` the new unit has
          just been charged, so it owes ``k + 1`` units;
        - a *terminated* instance that released exactly at a boundary
          never entered the next unit, so it owes ``k`` units (Algorithm 2
          releases instances precisely there to avoid the recharge), and
          float noise a few ulps past the boundary is forgiven.
        """
        if instance.started_at is None:
            return 0
        uptime = instance.uptime(now)
        if instance.terminated_at is None:
            units = (
                math.floor((uptime + _BOUNDARY_EPS) / self.charging_unit) + 1
            )
        else:
            units = math.ceil((uptime - _BOUNDARY_EPS) / self.charging_unit)
        return max(1, units)

    def cost(self, instance: Instance, now: float) -> float:
        """Monetary cost of ``instance`` as of ``now``."""
        return self.units_charged(instance, now) * instance.itype.price_per_unit

    def time_to_next_charge(self, instance: Instance, now: float) -> float:
        """Seconds until ``instance`` enters its next charging unit.

        This is the paper's ``r_j`` (Algorithm 2). The value lies in
        ``(0, u]``: at an exact unit boundary the new unit has just been
        charged (the same convention :meth:`units_charged` applies to a
        running instance), so the *next* charge is a full unit away. For
        a running instance ``now + time_to_next_charge == paid_until``
        up to boundary tolerance.
        """
        if instance.started_at is None:
            # A pending instance will be charged its first unit on start;
            # treat the imminent start as "charges immediately".
            return 0.0
        elapsed = max(0.0, now - instance.started_at)
        into_unit = math.fmod(elapsed, self.charging_unit)
        if into_unit <= _BOUNDARY_EPS or (
            self.charging_unit - into_unit <= _BOUNDARY_EPS
        ):
            return self.charging_unit
        return self.charging_unit - into_unit

    def next_charge_time(self, instance: Instance, now: float) -> float:
        """Absolute simulation time of the next charge boundary."""
        return now + self.time_to_next_charge(instance, now)

    def paid_until(self, instance: Instance, now: float) -> float:
        """Absolute time through which ``instance`` is already paid.

        A never-started (pending or cancelled) instance has been charged
        nothing, so its paid-through horizon collapses onto
        ``requested_at`` — not ``now``, which would falsely claim a
        pending instance is paid up while billing zero units.
        """
        if instance.started_at is None:
            return instance.requested_at
        units = self.units_charged(instance, now)
        return instance.started_at + units * self.charging_unit

    def wasted_time(self, instance: Instance, now: float) -> float:
        """Paid-but-unused seconds if ``instance`` terminated at ``now``.

        For a terminated instance, uses its actual termination time.
        """
        if instance.started_at is None:
            return 0.0
        end = (
            instance.terminated_at
            if instance.terminated_at is not None
            else now
        )
        paid = self.units_charged(instance, now) * self.charging_unit
        return max(0.0, paid - (end - instance.started_at))
