"""SVG renderers for run visualizations (no external dependencies).

Produces small standalone SVG documents: a pool-size step chart and a
per-instance Gantt chart with task phases color-coded (stage-in /
execute / stage-out / killed). Useful for embedding run summaries in
reports and notebooks.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.simulator import RunResult

__all__ = ["gantt_svg", "pool_svg", "save_svg"]

_COLORS = {
    "stage_in": "#8ecae6",
    "execute": "#219ebc",
    "stage_out": "#ffb703",
    "killed": "#e63946",
}


def _header(width: int, height: int, title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<title>{title}</title>',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def pool_svg(result: RunResult, *, width: int = 640, height: int = 200) -> str:
    """The pool-size step function as an SVG polyline."""
    makespan = max(result.makespan, 1e-9)
    peak = max((c for _, c in result.pool_timeline), default=1)
    margin = 30
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    def x(t: float) -> float:
        return margin + plot_w * min(t / makespan, 1.0)

    def y(count: int) -> float:
        return height - margin - plot_h * count / max(peak, 1)

    points: list[str] = []
    previous = 0
    for time, count in result.pool_timeline:
        points.append(f"{x(time):.1f},{y(previous):.1f}")
        points.append(f"{x(time):.1f},{y(count):.1f}")
        previous = count
    points.append(f"{x(makespan):.1f},{y(previous):.1f}")

    parts = _header(width, height, f"pool size — {result.workflow_name}")
    parts.append(
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="#219ebc" stroke-width="2"/>'
    )
    parts.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="#555"/>'
    )
    parts.append(
        f'<text x="{margin}" y="{margin - 10}" font-size="12" fill="#333">'
        f"pool size (peak {peak}) over {makespan:.0f}s — "
        f"{result.autoscaler_name}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def gantt_svg(result: RunResult, *, width: int = 800, lane_height: int = 14) -> str:
    """Per-instance Gantt chart with phase-colored attempt bars."""
    makespan = max(result.makespan, 1e-9)
    instances = sorted(
        {a.instance_id for a in result.monitor.all_attempts()}
    )
    margin = 70
    plot_w = width - margin - 10
    height = 30 + lane_height * max(len(instances), 1) + 20

    def x(t: float) -> float:
        return margin + plot_w * min(max(t, 0.0) / makespan, 1.0)

    parts = _header(width, height, f"gantt — {result.workflow_name}")
    parts.append(
        f'<text x="10" y="18" font-size="12" fill="#333">'
        f"{result.workflow_name} under {result.autoscaler_name}: "
        f"{makespan:.0f}s, {result.total_units} units</text>"
    )
    for lane, instance_id in enumerate(instances):
        top = 30 + lane * lane_height
        parts.append(
            f'<text x="5" y="{top + lane_height - 4}" font-size="10" '
            f'fill="#333">{instance_id}</text>'
        )
        for attempt in result.monitor.all_attempts():
            if attempt.instance_id != instance_id:
                continue
            end = attempt.complete_time
            if end is None:
                end = attempt.killed_at if attempt.killed_at is not None else makespan
            if attempt.is_killed:
                segments = [(attempt.dispatch_time, end, "killed")]
            else:
                segments = []
                if attempt.exec_start is not None:
                    segments.append(
                        (attempt.dispatch_time, attempt.exec_start, "stage_in")
                    )
                    exec_end = attempt.exec_end if attempt.exec_end is not None else end
                    segments.append((attempt.exec_start, exec_end, "execute"))
                    if attempt.exec_end is not None:
                        segments.append((attempt.exec_end, end, "stage_out"))
                else:
                    segments.append((attempt.dispatch_time, end, "stage_in"))
            for start, stop, phase in segments:
                if stop <= start:
                    continue
                parts.append(
                    f'<rect x="{x(start):.1f}" y="{top + 1}" '
                    f'width="{max(x(stop) - x(start), 0.5):.1f}" '
                    f'height="{lane_height - 2}" fill="{_COLORS[phase]}"/>'
                )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | Path) -> None:
    """Write an SVG document to ``path``."""
    Path(path).write_text(svg, encoding="utf-8")
