"""Run visualization: pool charts and per-instance Gantt charts.

Operators of the paper's system watch two things: how the pool breathes
over time, and how tasks pack onto instances. These renderers produce
both from a finished :class:`~repro.engine.simulator.RunResult`, as plain
ASCII (terminal-friendly, used by the examples) — the SVG variants live
in :mod:`repro.reporting.svg`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.engine.monitor import TaskAttempt
from repro.engine.simulator import RunResult
from repro.util.formatting import format_duration

__all__ = ["gantt_ascii", "pool_ascii"]


def pool_ascii(result: RunResult, *, width: int = 72) -> str:
    """Render the pool-size step function as an ASCII area chart."""
    timeline = result.pool_timeline
    makespan = max(result.makespan, 1e-9)
    if not timeline:
        return "(no pool changes recorded)"
    peak = max(count for _, count in timeline)
    if peak == 0:
        return "(pool never ran an instance)"

    columns = []
    for x in range(width):
        t = makespan * x / max(width - 1, 1)
        size = 0
        for time, count in timeline:
            if time <= t:
                size = count
            else:
                break
        columns.append(size)

    lines = []
    for level in range(peak, 0, -1):
        row = "".join("#" if c >= level else " " for c in columns)
        lines.append(f"{level:3d} |{row}")
    lines.append("    +" + "-" * width)
    lines.append(
        f"    0{'time ->':^{max(width - 12, 8)}}{format_duration(makespan):>12}"
    )
    return "\n".join(lines)


def _attempts_by_instance(result: RunResult) -> dict[str, list[TaskAttempt]]:
    grouped: dict[str, list[TaskAttempt]] = defaultdict(list)
    for attempt in result.monitor.all_attempts():
        grouped[attempt.instance_id].append(attempt)
    for attempts in grouped.values():
        attempts.sort(key=lambda a: a.dispatch_time)
    return dict(sorted(grouped.items()))


def gantt_ascii(result: RunResult, *, width: int = 72) -> str:
    """Per-instance occupancy Gantt chart.

    Each instance gets one lane; a column is drawn ``#`` when any slot of
    the instance is occupied at that instant, ``x`` when the occupying
    attempt was later killed (wasted work), and ``.`` when the instance is
    up but idle. Multi-slot detail is aggregated — the lane answers "was
    this paid instance doing anything?", the utilization question WIRE
    optimizes.
    """
    makespan = max(result.makespan, 1e-9)
    grouped = _attempts_by_instance(result)
    if not grouped:
        return "(no task attempts recorded)"

    # Instance up-intervals from the pool's instance records.
    lines = [f"one lane per instance; '#' busy, 'x' wasted, '.' idle"]
    for instance_id, attempts in grouped.items():
        lane = []
        for x in range(width):
            t = makespan * x / max(width - 1, 1)
            symbol = " "
            for attempt in attempts:
                end = (
                    attempt.complete_time
                    if attempt.complete_time is not None
                    else attempt.killed_at
                )
                if end is None:
                    end = makespan
                if attempt.dispatch_time <= t < end:
                    symbol = "x" if attempt.is_killed else "#"
                    break
            if symbol == " " and _instance_up(result, instance_id, t):
                symbol = "."
            lane.append(symbol)
        lines.append(f"{instance_id:>8s} |{''.join(lane)}|")
    lines.append(f"{'':8s}  0{'time ->':^{max(width - 14, 8)}}{format_duration(makespan):>12}")
    return "\n".join(lines)


def _instance_up(result: RunResult, instance_id: str, t: float) -> bool:
    """Whether the instance was RUNNING at time ``t``.

    Uses the attempts' instance ids against the pool timeline
    indirectly: an instance is considered up between its first dispatch
    and the later of its last attempt end and the run end — a
    conservative view that suffices for idle-lane shading.
    """
    attempts = [
        a for a in result.monitor.all_attempts() if a.instance_id == instance_id
    ]
    if not attempts:
        return False
    first = min(a.dispatch_time for a in attempts)
    last = max(
        (
            a.complete_time
            if a.complete_time is not None
            else (a.killed_at if a.killed_at is not None else result.makespan)
        )
        for a in attempts
    )
    return first <= t <= last
