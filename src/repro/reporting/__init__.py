"""Run visualization: ASCII and SVG pool/Gantt charts."""

from repro.reporting.gantt import gantt_ascii, pool_ascii
from repro.reporting.svg import gantt_svg, pool_svg, save_svg

__all__ = ["gantt_ascii", "gantt_svg", "pool_ascii", "pool_svg", "save_svg"]
