"""Central workload registry: one name space for every experiment axis.

Every entry point that takes a workload name — ``repro run``,
``compare``, ``analyze``, ``campaign``, ``robustness``, ``fleet``, the
fleet workload catalog, and the experiment sweeps — resolves it here:

- builtin Table I names (``genome-S`` ... ``pagerank-L``) resolve to
  their :class:`~repro.workloads.StagedWorkflowSpec`;
- ``montage-S``/``montage-L`` resolve to seed-taking generator
  adapters;
- ``zoo/<instance>`` names resolve to specs calibrated on demand from
  the vendored WfCommons instances under ``repro/zoo/data/``
  (:mod:`repro.zoo.calibrate`); calibration is cached per process.

Unknown names raise :class:`UnknownWorkloadError`, whose message lists
every available name — the CLI turns that into a clean exit instead of
a traceback, and there is exactly one code path doing so.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.dag.workflow import Workflow
from repro.workloads import montage, table1_specs
from repro.workloads.base import StagedWorkflowSpec
from repro.zoo.calibrate import calibrate
from repro.zoo.wfcommons import read_wfcommons_file

__all__ = [
    "GeneratorSpec",
    "LazyZooSpec",
    "UnknownWorkloadError",
    "ZOO_PREFIX",
    "available_workloads",
    "calibrated_spec",
    "load_instance",
    "resolve_workload",
    "workload_catalog",
    "zoo_instance_names",
    "zoo_instance_path",
]

#: registry prefix for calibrated zoo workloads: ``zoo/<instance>``
ZOO_PREFIX = "zoo/"

_DATA_DIR = Path(__file__).resolve().parent / "data"


class UnknownWorkloadError(ValueError):
    """An unrecognized workload name, listing what is available."""

    def __init__(self, name: str) -> None:
        self.workload = name
        known = ", ".join(available_workloads())
        super().__init__(f"unknown workload {name!r}; choose one of: {known}")


@dataclass(frozen=True)
class GeneratorSpec:
    """A named seed-taking workflow generator (duck-types ``generate``).

    Wraps generator functions that are not
    :class:`~repro.workloads.StagedWorkflowSpec` instances (montage's
    direct DAG builder) behind the spec interface the experiment layers
    expect. Frozen and picklable, so it crosses campaign/fleet worker
    process boundaries.
    """

    name: str
    scale: str

    def generate(self, seed: int = 0) -> Workflow:
        return montage(self.scale, seed=seed)

    def __call__(self, seed: int = 0) -> Workflow:
        return self.generate(seed)


@dataclass(frozen=True)
class LazyZooSpec:
    """A zoo workload that calibrates on first generation.

    Fleet catalogs carry one entry per registry name; resolving every
    zoo instance eagerly at catalog construction would import and
    calibrate workloads the run never submits. This wrapper defers to
    the per-process :func:`calibrated_spec` cache at ``generate`` time.
    Frozen and picklable (it carries only the instance name).
    """

    instance: str

    @property
    def name(self) -> str:
        return ZOO_PREFIX + self.instance

    def generate(self, seed: int = 0) -> Workflow:
        return calibrated_spec(self.instance).generate(seed)

    def __call__(self, seed: int = 0) -> Workflow:
        return self.generate(seed)


def zoo_instance_names() -> tuple[str, ...]:
    """Sorted names of the vendored WfCommons instances."""
    if not _DATA_DIR.is_dir():  # pragma: no cover - packaging error
        return ()
    return tuple(sorted(p.stem for p in _DATA_DIR.glob("*.json")))


def zoo_instance_path(name: str) -> Path:
    """Path of the vendored instance ``name`` (with or without prefix)."""
    stem = name[len(ZOO_PREFIX):] if name.startswith(ZOO_PREFIX) else name
    path = _DATA_DIR / f"{stem}.json"
    if not path.is_file():
        raise UnknownWorkloadError(name)
    return path


def load_instance(name: str) -> Workflow:
    """Import the vendored instance ``name`` as a concrete workflow."""
    return read_wfcommons_file(zoo_instance_path(name))


@lru_cache(maxsize=None)
def _calibrated_spec_cached(stem: str) -> StagedWorkflowSpec:
    return calibrate(load_instance(stem), name=ZOO_PREFIX + stem).spec


def calibrated_spec(name: str) -> StagedWorkflowSpec:
    """The spec calibrated from instance ``name`` (cached per process).

    ``name`` may carry the ``zoo/`` prefix or not; both forms hit the
    same cache entry. Calibration is deterministic (no RNG), so the
    cache can never go stale within a process and equal names yield
    identical specs across processes.
    """
    stem = name[len(ZOO_PREFIX):] if name.startswith(ZOO_PREFIX) else name
    return _calibrated_spec_cached(stem)


def _builtin_catalog() -> dict[str, object]:
    catalog: dict[str, object] = dict(table1_specs())
    catalog["montage-S"] = GeneratorSpec("montage-S", "S")
    catalog["montage-L"] = GeneratorSpec("montage-L", "L")
    return catalog


def available_workloads() -> tuple[str, ...]:
    """Every resolvable workload name, sorted (builtin first, then zoo)."""
    builtin = tuple(sorted(_builtin_catalog()))
    zoo = tuple(ZOO_PREFIX + name for name in zoo_instance_names())
    return builtin + zoo


def resolve_workload(name: str):
    """Resolve ``name`` to a workload with a ``generate(seed)`` method.

    Builtin names return their spec; ``zoo/<instance>`` names return
    the spec calibrated from the vendored instance. Raises
    :class:`UnknownWorkloadError` (listing the available names) for
    anything else.
    """
    builtin = _builtin_catalog()
    if name in builtin:
        return builtin[name]
    if name.startswith(ZOO_PREFIX):
        return calibrated_spec(name)
    raise UnknownWorkloadError(name)


def workload_catalog() -> dict[str, object]:
    """Name -> workload mapping over the full registry (fleet catalogs).

    Builtin entries resolve eagerly (plain specs); zoo entries are
    :class:`LazyZooSpec` wrappers that calibrate on first use.
    """
    catalog = _builtin_catalog()
    for name in zoo_instance_names():
        catalog[ZOO_PREFIX + name] = LazyZooSpec(name)
    return catalog
