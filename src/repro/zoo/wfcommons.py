"""WfCommons JSON importer.

WfCommons (wfcommons.org) is the community archive of real workflow
execution instances — Montage, Epigenomics, Cycles, Seismology, BLAST
and dozens more — exchanged as JSON documents following the WfFormat
schema. This module reads the subset needed to turn an instance into a
:class:`~repro.dag.workflow.Workflow`: task ids, parent/child edges,
measured runtimes, and per-task input/output bytes.

Two schema layouts are supported:

- the *flat* layout (WfFormat <= 1.3): ``workflow.tasks`` (or the
  legacy ``workflow.jobs``) with per-task ``runtimeInSeconds`` (or
  ``runtime``), ``parents``/``children``, and an inline ``files`` list
  carrying ``link`` (``input``/``output``) and ``sizeInBytes``;
- the *split* layout (WfFormat >= 1.4): ``workflow.specification.tasks``
  with ``inputFiles``/``outputFiles`` referencing
  ``workflow.specification.files`` by id, and runtimes in
  ``workflow.execution.tasks``.

Unknown fields are ignored (real instances carry machine specs,
energy counters, command lines, ...). Structural errors — duplicate
task ids, parent/child references to undeclared tasks, dependency
cycles — raise :class:`ValueError` naming the offending task/ref, the
same validation contract as :func:`repro.dag.dax.read_dax`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

from repro.dag.task import Task
from repro.dag.workflow import CycleError, Workflow

__all__ = ["read_wfcommons", "read_wfcommons_file"]

#: trailing WfCommons instance counters stripped to recover the
#: executable name: ``blastall_00003`` / ``mProject_ID0002`` -> base
_COUNTER_SUFFIX = re.compile(r"(_ID\d+|_\d+)$")


def read_wfcommons(text: str, *, default_runtime: float = 1.0) -> Workflow:
    """Parse a WfCommons JSON document into a :class:`Workflow`.

    Tasks without a recorded runtime get ``default_runtime`` seconds.
    Raises :class:`ValueError` on documents that are not WfCommons
    shaped, declare duplicate task ids, reference undeclared tasks in
    ``parents``/``children``, or contain a dependency cycle.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from None
    if not isinstance(doc, Mapping):
        raise ValueError("not a WfCommons document: top level is not an object")
    name = str(doc.get("name") or "wfcommons-workflow")
    workflow_obj = doc.get("workflow")
    if not isinstance(workflow_obj, Mapping):
        raise ValueError(
            f"not a WfCommons document: {name!r} has no 'workflow' object"
        )

    spec_obj = workflow_obj.get("specification")
    if isinstance(spec_obj, Mapping):  # split layout (>= 1.4)
        raw_tasks = spec_obj.get("tasks")
        file_sizes = _file_size_index(name, spec_obj.get("files"))
        runtimes = _execution_runtimes(workflow_obj.get("execution"))
    else:  # flat layout (<= 1.3)
        raw_tasks = workflow_obj.get("tasks", workflow_obj.get("jobs"))
        file_sizes = {}
        runtimes = {}
    if not isinstance(raw_tasks, list) or not raw_tasks:
        raise ValueError(
            f"WfCommons document {name!r} declares no tasks"
        )

    tasks: list[Task] = []
    edges: list[tuple[str, str]] = []
    declared: dict[str, dict[str, Any]] = {}
    for raw in raw_tasks:
        if not isinstance(raw, Mapping):
            raise ValueError(
                f"WfCommons document {name!r}: task entry is not an object"
            )
        task_id = str(raw.get("id") or raw.get("name") or "")
        if not task_id:
            raise ValueError(
                f"WfCommons document {name!r}: task without id or name"
            )
        if task_id in declared:
            raise ValueError(
                f"WfCommons document {name!r}: duplicate task id {task_id!r}"
            )
        declared[task_id] = dict(raw)
        tasks.append(_parse_task(raw, task_id, file_sizes, runtimes, default_runtime))

    for task_id, raw in declared.items():
        for parent in raw.get("parents") or ():
            parent_id = str(parent)
            if parent_id not in declared:
                raise ValueError(
                    f"WfCommons document {name!r}: task {task_id!r} lists "
                    f"parent {parent_id!r}, which is not declared"
                )
            edges.append((parent_id, task_id))
        for child in raw.get("children") or ():
            child_id = str(child)
            if child_id not in declared:
                raise ValueError(
                    f"WfCommons document {name!r}: task {task_id!r} lists "
                    f"child {child_id!r}, which is not declared"
                )
            edges.append((task_id, child_id))

    try:
        return Workflow(name, tasks, edges)
    except CycleError as exc:
        raise CycleError(
            f"WfCommons document {name!r} is not acyclic: {exc}"
        ) from None


def read_wfcommons_file(
    path: str | Path, *, default_runtime: float = 1.0
) -> Workflow:
    """Read a WfCommons JSON instance from ``path``."""
    return read_wfcommons(
        Path(path).read_text(encoding="utf-8"), default_runtime=default_runtime
    )


def _executable(raw: Mapping[str, Any], task_id: str) -> str:
    """Executable name: ``category`` if present, else the de-numbered id."""
    category = raw.get("category")
    if category:
        return str(category)
    base = _COUNTER_SUFFIX.sub("", str(raw.get("name") or task_id))
    return base or task_id


def _file_size_index(name: str, raw_files: Any) -> dict[str, float]:
    """Map file id -> bytes for the split layout's specification.files."""
    sizes: dict[str, float] = {}
    for raw in raw_files or ():
        if not isinstance(raw, Mapping):
            continue
        file_id = str(raw.get("id") or raw.get("name") or "")
        if not file_id:
            raise ValueError(
                f"WfCommons document {name!r}: file entry without id"
            )
        sizes[file_id] = float(raw.get("sizeInBytes", raw.get("size", 0.0)) or 0.0)
    return sizes


def _execution_runtimes(execution: Any) -> dict[str, float]:
    """Map task id -> measured runtime from the split layout's execution."""
    runtimes: dict[str, float] = {}
    if not isinstance(execution, Mapping):
        return runtimes
    for raw in execution.get("tasks") or ():
        if not isinstance(raw, Mapping):
            continue
        task_id = str(raw.get("id") or raw.get("name") or "")
        runtime = raw.get("runtimeInSeconds", raw.get("runtime"))
        if task_id and runtime is not None:
            runtimes[task_id] = float(runtime)
    return runtimes


def _parse_task(
    raw: Mapping[str, Any],
    task_id: str,
    file_sizes: Mapping[str, float],
    runtimes: Mapping[str, float],
    default_runtime: float,
) -> Task:
    runtime = raw.get("runtimeInSeconds", raw.get("runtime"))
    if runtime is None:
        runtime = runtimes.get(task_id, default_runtime)

    input_size = 0.0
    output_size = 0.0
    for raw_file in raw.get("files") or ():  # flat layout: inline files
        if not isinstance(raw_file, Mapping):
            continue
        size = float(
            raw_file.get("sizeInBytes", raw_file.get("size", 0.0)) or 0.0
        )
        link = raw_file.get("link", "")
        if link == "input":
            input_size += size
        elif link == "output":
            output_size += size
    for file_id in raw.get("inputFiles") or ():  # split layout: by reference
        input_size += file_sizes.get(str(file_id), 0.0)
    for file_id in raw.get("outputFiles") or ():
        output_size += file_sizes.get(str(file_id), 0.0)

    return Task(
        task_id=task_id,
        executable=_executable(raw, task_id),
        runtime=float(runtime),
        input_size=input_size,
        output_size=output_size,
    )
