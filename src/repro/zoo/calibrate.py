"""Trace calibration: fit a generative spec to an imported workflow.

Turns one concrete workflow instance (e.g. a WfCommons import) into a
:class:`~repro.workloads.StagedWorkflowSpec` by stage clustering +
moment matching, so a single observed trace becomes a *generative*
workload: different seeds realize fresh runs with the same per-stage
statistics (the paper's cross-run variability, Observation 2), and the
spec can be re-scaled to larger task counts.

The fit, per inferred stage (:attr:`Workflow.stages`):

- ``mean_exec`` — the stage's sample mean runtime (moment matching of
  the first moment: the generative model's runtime is
  ``mean_exec * size_scale * lognormal_noise`` with both factors having
  unit mean, so the model mean equals ``mean_exec`` exactly);
- ``size_dependence`` — from the least-squares slope of runtime on
  input size: ``d = slope * mean(size) / mean(runtime)``, clipped to
  [0, 1]. This is the fraction of runtime variance explained by size,
  i.e. ``d = corr(r, s) * cv(r) / cv(s)``;
- ``cv`` — the lognormal-noise coefficient of variation solved so the
  model's *total* runtime CV matches the sample CV:
  ``cv_total^2 = cv_size^2 + cv^2 + cv_size^2 * cv^2`` (independent
  multiplicative factors), where ``cv_size = d * cv(s)`` is the
  size-driven part. When ``d`` is not clipped this makes the model CV
  equal the sample CV *exactly*;
- sizes — kept verbatim as :class:`~repro.workloads.EmpiricalSizes`
  (or :class:`~repro.workloads.FixedSize` when degenerate), so the
  size moments that feed the decomposition are reproduced exactly;
- ``linkage`` — inferred from the parent structure against the
  previous stage (``all`` / ``one_to_one`` / ``block``). A stage DAG
  that is not a chain is approximated by its topological stage order
  (per-stage statistics are unaffected; only the dependency shape is
  coarsened).

Calibration is pure deterministic arithmetic over the trace — no RNG —
so calibrating the same instance twice yields byte-identical specs
(:func:`spec_to_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from math import sqrt

import numpy as np

from repro.dag.workflow import Workflow
from repro.util.formatting import render_table
from repro.workloads.base import (
    BlockSizes,
    EmpiricalSizes,
    FixedSize,
    SizeModel,
    StagedWorkflowSpec,
    StageTemplate,
    UniformSizes,
    ZipfSizes,
)

__all__ = [
    "CalibrationResult",
    "StageFit",
    "calibrate",
    "render_calibration",
    "scale_spec",
    "spec_from_json",
    "spec_to_json",
]

#: CVs below this are treated as "no skew" when forming relative errors
_CV_FLOOR = 1e-9


@dataclass(frozen=True)
class StageFit:
    """Fitted-vs-source statistics for one stage."""

    stage_id: str
    executable: str
    count: int
    linkage: str
    #: source trace statistics
    source_mean: float
    source_cv: float
    #: fitted template parameters
    mean_exec: float
    noise_cv: float
    size_dependence: float
    #: model-implied statistics (what regenerating reproduces in
    #: expectation): mean and total CV of the fitted generative model
    model_mean: float
    model_cv: float

    @property
    def mean_rel_err(self) -> float:
        """|model mean - source mean| / source mean."""
        return abs(self.model_mean - self.source_mean) / max(
            self.source_mean, _CV_FLOOR
        )

    @property
    def cv_rel_err(self) -> float:
        """Relative error of the model's total runtime CV vs the source.

        Stages with (near-)zero source skew compare absolutely: the fit
        is exact when the model CV is also (near-)zero.
        """
        if self.source_cv < _CV_FLOOR:
            return 0.0 if self.model_cv < _CV_FLOOR else self.model_cv
        return abs(self.model_cv - self.source_cv) / self.source_cv


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted spec plus its per-stage fit report."""

    name: str
    source_name: str
    spec: StagedWorkflowSpec
    stages: tuple[StageFit, ...]

    @property
    def max_mean_rel_err(self) -> float:
        """Worst per-stage mean-runtime relative error."""
        return max(fit.mean_rel_err for fit in self.stages)

    @property
    def max_cv_rel_err(self) -> float:
        """Worst per-stage runtime-CV relative error."""
        return max(fit.cv_rel_err for fit in self.stages)


def calibrate(workflow: Workflow, *, name: str | None = None) -> CalibrationResult:
    """Fit a generative spec to ``workflow``; see the module docstring.

    ``name`` names the resulting spec (default: the workflow's name
    with a ``-calibrated`` suffix).
    """
    spec_name = name or f"{workflow.name}-calibrated"
    templates: list[StageTemplate] = []
    fits: list[StageFit] = []
    previous_ids: tuple[str, ...] | None = None
    for stage in workflow.stages:
        tasks = [workflow.task(tid) for tid in stage.task_ids]
        runtimes = np.array([t.runtime for t in tasks], dtype=float)
        sizes = np.array([t.input_size for t in tasks], dtype=float)
        outputs = np.array([t.output_size for t in tasks], dtype=float)

        mean_r = float(runtimes.mean())
        cv_r = float(runtimes.std() / mean_r) if mean_r > 0 else 0.0
        mean_s = float(sizes.mean())
        d = _fit_size_dependence(runtimes, sizes)
        cv_size = d * float(sizes.std() / mean_s) if mean_s > 0 else 0.0
        # Solve the lognormal-noise CV from the variance decomposition
        # of a product of independent unit-mean factors.
        noise_var = max(cv_r**2 - cv_size**2, 0.0) / (1.0 + cv_size**2)
        noise_cv = sqrt(noise_var)
        model_cv = sqrt((1.0 + cv_size**2) * (1.0 + noise_var) - 1.0)

        linkage = _infer_linkage(workflow, stage.task_ids, previous_ids)
        out_fraction = (
            float(outputs.mean() / mean_s) if mean_s > 0 else 1.0
        )
        templates.append(
            StageTemplate(
                executable=stage.executable,
                count=len(tasks),
                # generate() floors runtimes at 0.05 s; so do we
                mean_exec=max(mean_r, 0.05),
                cv=noise_cv,
                size_model=_fit_size_model(sizes),
                output_fraction=out_fraction,
                linkage=linkage,
                size_dependence=d,
            )
        )
        fits.append(
            StageFit(
                stage_id=stage.stage_id,
                executable=stage.executable,
                count=len(tasks),
                linkage=linkage,
                source_mean=mean_r,
                source_cv=cv_r,
                mean_exec=max(mean_r, 0.05),
                noise_cv=noise_cv,
                size_dependence=d,
                model_mean=max(mean_r, 0.05),
                model_cv=model_cv,
            )
        )
        previous_ids = stage.task_ids
    return CalibrationResult(
        name=spec_name,
        source_name=workflow.name,
        spec=StagedWorkflowSpec(name=spec_name, templates=tuple(templates)),
        stages=tuple(fits),
    )


def _fit_size_dependence(runtimes: np.ndarray, sizes: np.ndarray) -> float:
    """Least-squares ``size_dependence`` in [0, 1]; 0 when degenerate."""
    if runtimes.size < 2:
        return 0.0
    mean_r, mean_s = float(runtimes.mean()), float(sizes.mean())
    var_s = float(sizes.var())
    if mean_r <= 0 or mean_s <= 0 or var_s <= 0:
        return 0.0
    slope = float(np.cov(runtimes, sizes, bias=True)[0, 1]) / var_s
    return float(np.clip(slope * mean_s / mean_r, 0.0, 1.0))


def _fit_size_model(sizes: np.ndarray) -> SizeModel:
    """Empirical sizes, collapsed to :class:`FixedSize` when degenerate."""
    if sizes.size == 0:
        return FixedSize(0.0)
    if sizes.size == 1 or float(sizes.std()) == 0.0:
        return FixedSize(float(sizes[0]))
    return EmpiricalSizes(tuple(float(s) for s in sizes))


def _infer_linkage(
    workflow: Workflow,
    stage_tasks: tuple[str, ...],
    previous_ids: tuple[str, ...] | None,
) -> str:
    """Classify this stage's dependency pattern on the previous one.

    ``one_to_one`` — equal disjoint contiguous shares of the previous
    stage (per-chunk pipelines); ``block`` — a disjoint contiguous
    partition with uneven shares (hierarchical merges); ``all`` —
    everything else (stage barrier; also the chain approximation for
    parents outside the previous stage).
    """
    if not previous_ids:
        return "all"
    prev_set = set(previous_ids)
    count = len(stage_tasks)
    parent_sets = [set(workflow.parents(tid)) & prev_set for tid in stage_tasks]
    if all(ps == prev_set for ps in parent_sets):
        return "all"
    covered: set[str] = set()
    for ps in parent_sets:
        if not ps or ps & covered:
            return "all"
        covered |= ps
    if covered != prev_set:
        return "all"
    share, remainder = divmod(len(previous_ids), count)
    if remainder == 0 and all(len(ps) == share for ps in parent_sets):
        return "one_to_one"
    return "block"


def scale_spec(spec: StagedWorkflowSpec, factor: float) -> StagedWorkflowSpec:
    """A spec with per-stage task counts scaled by ``factor`` (>= 1 task).

    ``one_to_one`` linkages whose divisibility breaks under rounding
    fall back to ``block`` (contiguous shares), preserving the pipeline
    shape as closely as integer counts allow.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be > 0, got {factor}")
    templates: list[StageTemplate] = []
    prev_count: int | None = None
    for template in spec.templates:
        count = max(1, round(template.count * factor))
        linkage = template.linkage
        if (
            linkage == "one_to_one"
            and prev_count is not None
            and prev_count % count != 0
        ):
            linkage = "block"
        templates.append(
            StageTemplate(
                executable=template.executable,
                count=count,
                mean_exec=template.mean_exec,
                cv=template.cv,
                size_model=template.size_model,
                output_fraction=template.output_fraction,
                linkage=linkage,
                size_dependence=template.size_dependence,
            )
        )
        prev_count = count
    return StagedWorkflowSpec(
        name=f"{spec.name}-x{factor:g}", templates=tuple(templates)
    )


def render_calibration(result: CalibrationResult) -> str:
    """The fitted-vs-source per-stage report as a text table."""
    rows = [
        [
            fit.stage_id,
            fit.count,
            fit.linkage,
            f"{fit.source_mean:.2f}",
            f"{fit.model_mean:.2f}",
            f"{fit.mean_rel_err * 100:.2f}%",
            f"{fit.source_cv:.3f}",
            f"{fit.model_cv:.3f}",
            f"{fit.cv_rel_err * 100:.2f}%",
            f"{fit.size_dependence:.2f}",
        ]
        for fit in result.stages
    ]
    return render_table(
        ["stage", "tasks", "linkage", "mean(src)", "mean(fit)", "err",
         "cv(src)", "cv(fit)", "err", "size dep"],
        rows,
        title=f"calibration of {result.source_name} -> spec {result.name!r}",
    )


# ----------------------------------------------------------------------
# spec serialization (deterministic: byte-identical for equal specs)
# ----------------------------------------------------------------------
_SPEC_FORMAT_VERSION = 1


def _size_model_to_obj(model: SizeModel) -> dict:
    if isinstance(model, FixedSize):
        return {"type": "fixed", "nbytes": model.nbytes}
    if isinstance(model, EmpiricalSizes):
        return {"type": "empirical", "sizes": list(model.sizes)}
    if isinstance(model, UniformSizes):
        return {"type": "uniform", "low": model.low, "high": model.high}
    if isinstance(model, BlockSizes):
        return {
            "type": "block",
            "total_bytes": model.total_bytes,
            "block_bytes": model.block_bytes,
        }
    if isinstance(model, ZipfSizes):
        return {
            "type": "zipf",
            "base_bytes": model.base_bytes,
            "alpha": model.alpha,
            "cap_multiple": model.cap_multiple,
        }
    raise ValueError(
        f"cannot serialize size model of type {type(model).__name__}"
    )


def _size_model_from_obj(obj: dict) -> SizeModel:
    kind = obj.get("type")
    if kind == "fixed":
        return FixedSize(float(obj["nbytes"]))
    if kind == "empirical":
        return EmpiricalSizes(tuple(float(s) for s in obj["sizes"]))
    if kind == "uniform":
        return UniformSizes(float(obj["low"]), float(obj["high"]))
    if kind == "block":
        return BlockSizes(float(obj["total_bytes"]), float(obj["block_bytes"]))
    if kind == "zipf":
        return ZipfSizes(
            float(obj["base_bytes"]), float(obj["alpha"]), float(obj["cap_multiple"])
        )
    raise ValueError(f"unknown size model type {kind!r}")


def spec_to_json(spec: StagedWorkflowSpec) -> str:
    """Serialize a spec as deterministic JSON (sorted keys, 2-space)."""
    payload = {
        "format_version": _SPEC_FORMAT_VERSION,
        "name": spec.name,
        "templates": [
            {
                "executable": t.executable,
                "count": t.count,
                "mean_exec": t.mean_exec,
                "cv": t.cv,
                "size_model": _size_model_to_obj(t.size_model),
                "output_fraction": t.output_fraction,
                "linkage": t.linkage,
                "size_dependence": t.size_dependence,
            }
            for t in spec.templates
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def spec_from_json(text: str) -> StagedWorkflowSpec:
    """Parse a document produced by :func:`spec_to_json`."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != _SPEC_FORMAT_VERSION:
        raise ValueError(f"unsupported spec format version {version!r}")
    templates = tuple(
        StageTemplate(
            executable=t["executable"],
            count=int(t["count"]),
            mean_exec=float(t["mean_exec"]),
            cv=float(t["cv"]),
            size_model=_size_model_from_obj(t["size_model"]),
            output_fraction=float(t["output_fraction"]),
            linkage=t["linkage"],
            size_dependence=float(t["size_dependence"]),
        )
        for t in payload["templates"]
    )
    return StagedWorkflowSpec(name=payload["name"], templates=templates)
