"""Real-workflow zoo: WfCommons ingestion, calibration, and the registry.

WIRE's evaluation rests on five synthetic Table I workloads, but the
paper's core claims (Observations 1-2: intra-stage skew and cross-run
variability) are about *real* workflow behavior. This package closes
that gap in three layers:

- :mod:`repro.zoo.wfcommons` parses WfCommons-format JSON instances
  (the community archive format behind Montage, Epigenomics, Cycles,
  Seismology, BLAST, ...) into :class:`~repro.dag.workflow.Workflow`
  objects, complementing the Pegasus DAX round-trip in
  :mod:`repro.dag.dax`. A handful of small instances are vendored under
  ``repro/zoo/data/``.
- :mod:`repro.zoo.calibrate` fits a *generative*
  :class:`~repro.workloads.StagedWorkflowSpec` to an imported trace —
  per-stage task counts, runtime means, lognormal skew,
  ``size_dependence``, and linkage — via stage clustering + moment
  matching, so any ingested DAG becomes a reusable workload at
  arbitrary scale factors.
- :mod:`repro.zoo.registry` unifies the builtin Table I specs with
  zoo-calibrated specs (``zoo/<instance>`` names) behind one
  :func:`resolve_workload` entry point, shared by ``repro
  run/campaign/robustness/fleet`` and the fleet workload catalog.
"""

from repro.zoo.calibrate import (
    CalibrationResult,
    StageFit,
    calibrate,
    render_calibration,
    scale_spec,
    spec_from_json,
    spec_to_json,
)
from repro.zoo.registry import (
    UnknownWorkloadError,
    available_workloads,
    calibrated_spec,
    load_instance,
    resolve_workload,
    workload_catalog,
    zoo_instance_names,
    zoo_instance_path,
)
from repro.zoo.wfcommons import read_wfcommons, read_wfcommons_file

__all__ = [
    "CalibrationResult",
    "StageFit",
    "UnknownWorkloadError",
    "available_workloads",
    "calibrate",
    "calibrated_spec",
    "load_instance",
    "read_wfcommons",
    "read_wfcommons_file",
    "render_calibration",
    "resolve_workload",
    "scale_spec",
    "spec_from_json",
    "spec_to_json",
    "workload_catalog",
    "zoo_instance_names",
    "zoo_instance_path",
]
