"""Trace replay: the paper's *task emulator*.

Paper §IV-C2: "In a run, task emulator behaves as if it runs task
executables. It reads the performance records of Hadoop tasks and consumes
the amount of resources according to the records."

:func:`emulated_workflow` rebuilds a workflow whose nominal task runtimes
come from a recorded trace. Optional perturbations model the cross-run
variability of §II-B:

- ``speed_factor`` scales every runtime (a different instance type /
  dataset scale between runs);
- ``stage_factors`` scales individual stages (dataset-dependent stage
  behaviour);
- ``noise_cv`` resamples each task with multiplicative lognormal noise
  (co-located-load interference).
"""

from __future__ import annotations

import numpy as np

from repro.dag.builder import WorkflowBuilder
from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.traces.record import RunTrace
from repro.util.rng import spawn_rng
from repro.util.validation import check_non_negative, check_positive

__all__ = ["emulated_workflow"]


def emulated_workflow(
    trace: RunTrace,
    *,
    speed_factor: float = 1.0,
    stage_factors: dict[str, float] | None = None,
    noise_cv: float = 0.0,
    seed: int = 0,
    name: str | None = None,
) -> Workflow:
    """Rebuild a workflow whose runtimes replay a recorded trace.

    Parameters mirror the cross-run variability axes of §II-B; with all
    defaults the emulated workflow reproduces the recorded execution
    times exactly (the pure task-emulator behaviour).
    """
    check_positive("speed_factor", speed_factor)
    check_non_negative("noise_cv", noise_cv)
    factors = stage_factors or {}
    for stage_id, factor in factors.items():
        check_positive(f"stage_factors[{stage_id!r}]", factor)

    rng = spawn_rng(seed, f"emulate/{trace.workflow_name}")
    builder = WorkflowBuilder(name or f"{trace.workflow_name}-replay")
    for record in trace.records:
        runtime = record.execution_time * speed_factor
        runtime *= factors.get(record.stage_id, 1.0)
        if noise_cv > 0:
            sigma2 = np.log1p(noise_cv**2)
            runtime *= float(
                rng.lognormal(mean=-0.5 * sigma2, sigma=float(np.sqrt(sigma2)))
            )
        builder.add_task(
            Task(
                task_id=record.task_id,
                executable=record.executable,
                runtime=max(runtime, 0.0),
                input_size=record.input_size,
                output_size=record.output_size,
            ),
            parents=list(record.parents),
        )
    return builder.build()
