"""Trace record/replay — the paper's Hadoop task-emulator stand-in."""

from repro.traces.record import RunTrace, TaskTraceRecord, record_run
from repro.traces.replay import emulated_workflow

__all__ = ["RunTrace", "TaskTraceRecord", "emulated_workflow", "record_run"]
