"""Run trace recording.

The paper replays *recorded* Hadoop task profiles through a task emulator
("It reads the performance records of Hadoop tasks and consumes the amount
of resources according to the records", §IV-C2). This module is the
recording half: it captures a completed run's per-task performance into a
serializable :class:`RunTrace` that :mod:`repro.traces.replay` can turn
back into an emulated workflow.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.dag.workflow import Workflow
from repro.engine.monitor import Monitor

__all__ = ["RunTrace", "TaskTraceRecord", "record_run"]

_TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TaskTraceRecord:
    """One task's measured profile from a completed run."""

    task_id: str
    executable: str
    stage_id: str
    execution_time: float
    stage_in_time: float
    stage_out_time: float
    input_size: float
    output_size: float
    parents: tuple[str, ...]


@dataclass(frozen=True)
class RunTrace:
    """A complete run's task profiles plus the DAG structure."""

    workflow_name: str
    records: tuple[TaskTraceRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a trace must contain at least one record")
        ids = [r.task_id for r in self.records]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids in trace")

    @property
    def total_execution_time(self) -> float:
        """Aggregate measured execution seconds across tasks."""
        return sum(r.execution_time for r in self.records)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON document."""
        payload = {
            "format_version": _TRACE_FORMAT_VERSION,
            "workflow_name": self.workflow_name,
            "records": [asdict(r) for r in self.records],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunTrace":
        """Parse a document produced by :meth:`to_json`."""
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != _TRACE_FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version!r}")
        records = tuple(
            TaskTraceRecord(
                task_id=r["task_id"],
                executable=r["executable"],
                stage_id=r["stage_id"],
                execution_time=float(r["execution_time"]),
                stage_in_time=float(r["stage_in_time"]),
                stage_out_time=float(r["stage_out_time"]),
                input_size=float(r["input_size"]),
                output_size=float(r["output_size"]),
                parents=tuple(r["parents"]),
            )
            for r in payload["records"]
        )
        return cls(workflow_name=payload["workflow_name"], records=records)

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "RunTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def record_run(workflow: Workflow, monitor: Monitor) -> RunTrace:
    """Capture the completed attempts of a finished run as a trace.

    Raises if any task never completed — traces describe whole runs.
    """
    records: list[TaskTraceRecord] = []
    for task_id in workflow.topological_order():
        attempts = monitor.attempts(task_id)
        final = next((a for a in reversed(attempts) if a.is_completed), None)
        if final is None:
            raise ValueError(f"task {task_id!r} has no completed attempt")
        task = workflow.task(task_id)
        records.append(
            TaskTraceRecord(
                task_id=task_id,
                executable=task.executable,
                stage_id=workflow.stage_of[task_id],
                execution_time=final.execution_time or 0.0,
                stage_in_time=final.stage_in_time or 0.0,
                stage_out_time=final.stage_out_time or 0.0,
                input_size=task.input_size,
                output_size=task.output_size,
                parents=tuple(sorted(workflow.parents(task_id))),
            )
        )
    return RunTrace(workflow_name=workflow.name, records=tuple(records))
