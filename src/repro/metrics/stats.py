"""Order statistics used throughout WIRE.

Paper §III-C: "we take the median values of task execution times. Compared
to the mean and the three-sigma rule, the median is more effective to
capture 'the middle performance' of skewed data distributions (e.g.,
Zipfian)". The moving median addresses "the longer-term and
more-consistent trends of the task performance at each stage".
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "MovingMedian",
    "cdf_points",
    "mean",
    "median",
    "median_sorted",
    "percentile_of",
]


def median(values: Iterable[float]) -> float:
    """Median of ``values``; raises on an empty input.

    Raising (rather than returning NaN) is deliberate: every call site in
    the predictor guards on data availability first (that is exactly what
    the five policies of §III-C encode), so an empty median is a logic bug.

    Implemented as a sort plus direct indexing rather than ``np.median``:
    for NaN-free doubles the two agree bit-for-bit (both select the sorted
    middle element, or average the two middle elements with one addition
    and one division), and skipping the array conversion makes the
    controller's small per-tick medians an order of magnitude cheaper.
    """
    data = sorted(values)
    if not data:
        raise ValueError("median of empty sequence")
    return median_sorted(data)


def median_sorted(data: Sequence[float]) -> float:
    """:func:`median` of an already-sorted sequence, in O(1).

    The predictor maintains per-stage execution times as incrementally
    sorted lists precisely so each tick's median is an index instead of a
    fresh O(n log n) aggregation. Bit-identical to ``np.median`` on
    NaN-free input (same middle element, same ``(a + b) / 2`` for even
    lengths).
    """
    n = len(data)
    if not n:
        raise ValueError("median of empty sequence")
    mid = n >> 1
    if n & 1:
        return float(data[mid])
    return float((data[mid - 1] + data[mid]) / 2.0)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty input. Kept for the
    median-vs-mean ablation bench."""
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return float(np.mean(data))


class MovingMedian:
    """Median over the last ``window`` observations.

    WIRE feeds one observation per MAPE interval (e.g. that interval's
    median transfer time) and reads back the median of the recent window —
    the paper's "moving median". ``window=1`` degenerates to
    most-recent-observation, matching the paper's literal ``t̃_data``
    definition; larger windows trade responsiveness for stability.
    """

    def __init__(self, window: int = 1) -> None:
        if not isinstance(window, int) or window < 1:
            raise ValueError(f"window must be an int >= 1, got {window!r}")
        self.window = window
        self._values: deque[float] = deque(maxlen=window)

    def push(self, value: float) -> None:
        """Append one per-interval observation."""
        self._values.append(float(value))

    def value(self) -> float | None:
        """Current moving median, or None before any observation."""
        if not self._values:
            return None
        return median(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def state_dict(self) -> dict:
        """Window size and buffered observations, oldest first."""
        return {"window": self.window, "values": list(self._values)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        window = state["window"]
        if not isinstance(window, int) or window < 1:
            raise ValueError(f"window must be an int >= 1, got {window!r}")
        self.window = window
        self._values = deque(
            (float(v) for v in state["values"]), maxlen=window
        )


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values`` as ``(sorted_values, cumulative_prob)``.

    Used to report the Fig 4 prediction-error CDFs.
    """
    if len(values) == 0:
        return np.array([]), np.array([])
    xs = np.sort(np.asarray(values, dtype=float))
    ps = np.arange(1, len(xs) + 1, dtype=float) / len(xs)
    return xs, ps


def percentile_of(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` with absolute value <= ``threshold``.

    Fig 4's headline statistics are of this form ("93.18% of tasks report
    <= 1 second prediction error").
    """
    if len(values) == 0:
        raise ValueError("percentile_of empty sequence")
    arr = np.abs(np.asarray(values, dtype=float))
    return float(np.mean(arr <= threshold))
