"""Prediction-error metrics (paper §IV-D, Figure 4).

For a task with actual execution time ``t`` and estimate ``t'``:

- *true error* = ``t' - t`` (reported for short and medium stages, where
  "an execution prediction error of even a few seconds can result in a
  large difference in resource scheduling");
- *relative true error* = ``(t' - t) / t`` (reported for long stages).

Stages are classified by mean task execution time: short (<= 10 s),
medium (<= 30 s), long (> 30 s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.stats import cdf_points, percentile_of

__all__ = [
    "ErrorSummary",
    "StageClass",
    "classify_stage",
    "relative_true_errors",
    "summarize_errors",
    "true_errors",
]


class StageClass(enum.Enum):
    """Stage type by mean task execution time (paper §IV-D)."""

    SHORT = "short"  # mean <= 10 s
    MEDIUM = "medium"  # 10 s < mean <= 30 s
    LONG = "long"  # mean > 30 s


def classify_stage(mean_execution_time: float) -> StageClass:
    """Classify a stage by its tasks' mean execution time."""
    if mean_execution_time < 0:
        raise ValueError(
            f"mean execution time must be >= 0, got {mean_execution_time}"
        )
    if mean_execution_time <= 10.0:
        return StageClass.SHORT
    if mean_execution_time <= 30.0:
        return StageClass.MEDIUM
    return StageClass.LONG


def true_errors(
    estimates: Sequence[float], actuals: Sequence[float]
) -> np.ndarray:
    """Per-task true errors ``t' - t``."""
    est = np.asarray(estimates, dtype=float)
    act = np.asarray(actuals, dtype=float)
    if est.shape != act.shape:
        raise ValueError(
            f"length mismatch: {est.shape[0]} estimates, {act.shape[0]} actuals"
        )
    return est - act


def relative_true_errors(
    estimates: Sequence[float], actuals: Sequence[float]
) -> np.ndarray:
    """Per-task relative true errors ``(t' - t) / t``.

    Raises when any actual is zero — relative error is undefined there,
    and long stages (the only consumers) never have zero runtimes.
    """
    act = np.asarray(actuals, dtype=float)
    if np.any(act == 0):
        raise ValueError("relative true error undefined for zero actual runtime")
    return true_errors(estimates, actuals) / act


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution summary of one stage's (or pool of stages') errors."""

    count: int
    mean_abs_error: float
    median_error: float
    #: fraction of tasks with |error| within the paper's headline
    #: threshold (1 s for short/medium stages, 15% for long stages)
    within_threshold: float
    threshold: float
    cdf_x: tuple[float, ...]
    cdf_p: tuple[float, ...]


def summarize_errors(errors: Sequence[float], threshold: float) -> ErrorSummary:
    """Summarize an error sample against an accuracy ``threshold``."""
    if len(errors) == 0:
        raise ValueError("cannot summarize an empty error sample")
    arr = np.asarray(errors, dtype=float)
    xs, ps = cdf_points(arr)
    return ErrorSummary(
        count=int(arr.size),
        mean_abs_error=float(np.mean(np.abs(arr))),
        median_error=float(np.median(arr)),
        within_threshold=percentile_of(arr, threshold),
        threshold=threshold,
        cdf_x=tuple(float(x) for x in xs),
        cdf_p=tuple(float(p) for p in ps),
    )
