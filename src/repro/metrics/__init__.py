"""Metrics: order statistics, prediction errors, and cost summaries."""

from repro.metrics.cost import (
    CostSummary,
    relative_execution_times,
    summarize_costs,
)
from repro.metrics.errors import (
    ErrorSummary,
    StageClass,
    classify_stage,
    relative_true_errors,
    summarize_errors,
    true_errors,
)
from repro.metrics.stats import (
    MovingMedian,
    cdf_points,
    mean,
    median,
    percentile_of,
)

__all__ = [
    "CostSummary",
    "ErrorSummary",
    "MovingMedian",
    "StageClass",
    "cdf_points",
    "classify_stage",
    "mean",
    "median",
    "percentile_of",
    "relative_execution_times",
    "relative_true_errors",
    "summarize_costs",
    "summarize_errors",
    "true_errors",
]
