"""Cost and performance metrics for run comparisons (paper §IV-E).

Figure 5 reports *resource cost* — the number of charging units used to
complete a run. Figure 6 reports *relative execution time* — makespans
"normalize[d] across settings and resource charging units to the best
performance". These helpers compute both from collections of
:class:`~repro.engine.simulator.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.simulator import RunResult

__all__ = ["CostSummary", "relative_execution_times", "summarize_costs"]


@dataclass(frozen=True)
class CostSummary:
    """Mean/std of resource cost and makespan over repeated runs."""

    runs: int
    mean_units: float
    std_units: float
    mean_makespan: float
    std_makespan: float
    mean_utilization: float

    @classmethod
    def empty(cls) -> "CostSummary":
        return cls(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))


def summarize_costs(results: Sequence[RunResult]) -> CostSummary:
    """Aggregate repeated runs of one (workflow, policy, u) setting."""
    if not results:
        return CostSummary.empty()
    units = np.array([r.total_units for r in results], dtype=float)
    spans = np.array([r.makespan for r in results], dtype=float)
    utils = np.array([r.utilization for r in results], dtype=float)
    return CostSummary(
        runs=len(results),
        mean_units=float(units.mean()),
        std_units=float(units.std()),
        mean_makespan=float(spans.mean()),
        std_makespan=float(spans.std()),
        mean_utilization=float(utils.mean()),
    )


def relative_execution_times(
    makespans: dict[str, float], *, best: float | None = None
) -> dict[str, float]:
    """Normalize per-setting makespans to the best (smallest) one.

    ``best`` overrides the denominator (the paper normalizes to the
    best performance across *all* settings of a workflow/dataset pair).
    """
    if not makespans:
        return {}
    denominator = best if best is not None else min(makespans.values())
    if denominator <= 0:
        raise ValueError(f"best makespan must be > 0, got {denominator}")
    return {name: span / denominator for name, span in makespans.items()}
