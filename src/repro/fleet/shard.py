"""Sharded event queues for fleet-scale simulation.

One fleet-wide :class:`~repro.engine.events.EventQueue` is the
scalability ceiling of :class:`~repro.fleet.engine.FleetSimulation`:
every tenant's task lifecycle pushes through a single heap, so at
thousands of tenants each push/pop pays ``log`` of the *whole* fleet's
pending-event count (plus one ever-growing payload index). The ROADMAP
north-star — planetary-scale open systems — needs the event storage
partitioned the way a real deployment is: per site/region, with tenants
hashed onto shards.

:class:`ShardedEventQueue` does exactly that while keeping the repo's
non-negotiable: **bit-identical results**. Three properties make the
sharded queue indistinguishable from the single queue:

- **one global sequence counter.** All shards draw ``seq`` from a shared
  :func:`itertools.count`, so every event gets the same ``seq`` it would
  have received from the unsharded queue (pushes happen in the same
  program order either way).
- **deterministic K-way merge.** ``pop()`` compares the full ordering
  key ``(time, kind priority, seq)`` across the live head of every
  shard and pops the global minimum. Keys are globally unique (shared
  ``seq``), so the merge reproduces the single-heap total order exactly
  — sharding changes *where* an event waits, never *when* it fires.
- **stable tenant→shard hashing.** Routing uses CRC-32 of the tenant id
  (:func:`shard_of`), not Python's per-process ``hash``, so a layout is
  reproducible across processes, platforms, and checkpoint/resume.
  Correctness does not depend on the routing function at all — the merge
  order is global — only load balance does.

The merge is also the fleet's **lockstep cross-shard clock**: no shard
may advance past the global minimum key, and because
``CONTROLLER_TICK`` sorts after every same-time task event (priority 2)
and routes to the dedicated *site shard* (shard 0, which also owns
instance lifecycle and provisioning events), every shard is fully
drained up to the MAPE tick boundary before the controller observes the
fleet — an epoch barrier per tick, by construction.

Per-shard push/pop tallies (:meth:`ShardedEventQueue.shard_stats`) make
skew visible; ``tools/perfbench.py`` records ``fleet_events_per_sec`` at
1/2/4 shards so the scaling stays measured, not asserted.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

from repro.engine.events import Event, EventKind, EventQueue

__all__ = ["ShardedEventQueue", "TenantShardRouter", "shard_of"]


def shard_of(tenant_id: str, shards: int) -> int:
    """Stable tenant→shard assignment: CRC-32 of the tenant id.

    Deliberately *not* Python's builtin ``hash`` (randomized per process
    for strings); CRC-32 gives the same layout in every process, which
    checkpoint/resume and cross-host CI reproduction rely on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return zlib.crc32(tenant_id.encode("utf-8")) % shards


#: event kinds whose payload is a scoped task id ("t03:stage_2_7")
_TASK_KINDS = frozenset(
    (
        EventKind.STAGE_IN_DONE,
        EventKind.EXEC_DONE,
        EventKind.STAGE_OUT_DONE,
        EventKind.TASK_FAILED,
    )
)


@dataclass(frozen=True)
class TenantShardRouter:
    """Maps ``(kind, payload)`` to a shard index for one fleet layout.

    Task lifecycle events route by the owning tenant's hashed id;
    ``WORKFLOW_ARRIVAL`` (whose payload is a tenant *index*) routes
    through a precomputed index table; everything touching shared site
    infrastructure — instance lifecycle, provisioning, the controller
    tick — lives on shard 0, the site shard. Frozen and table-driven so
    it pickles into checkpoints and never drifts between processes.
    """

    shards: int
    #: tenant index -> shard (the WORKFLOW_ARRIVAL payload is an index)
    by_index: tuple[int, ...]

    @classmethod
    def for_tenants(
        cls, shards: int, tenant_ids: tuple[str, ...]
    ) -> "TenantShardRouter":
        return cls(
            shards=shards,
            by_index=tuple(shard_of(tid, shards) for tid in tenant_ids),
        )

    def route(self, kind: EventKind, payload: Any) -> int:
        if kind in _TASK_KINDS and isinstance(payload, str):
            return shard_of(payload.split(":", 1)[0], self.shards)
        if kind is EventKind.WORKFLOW_ARRIVAL:
            return self.by_index[payload]
        return 0


class ShardedEventQueue:
    """N per-shard :class:`EventQueue` heaps behind the EventQueue API.

    Drop-in for :class:`EventQueue` (``push`` / ``pop`` / ``cancel`` /
    ``cancel_for_payload`` / ``peek_time`` / ``__len__`` / ``__bool__``),
    with storage partitioned by a :class:`TenantShardRouter` and a
    deterministic K-way merge on pop. See the module docstring for the
    bit-identity argument.
    """

    def __init__(self, shards: int, router: TenantShardRouter) -> None:
        if shards < 2:
            raise ValueError(
                f"a sharded queue needs >= 2 shards, got {shards} "
                "(use EventQueue directly for 1)"
            )
        if router.shards != shards:
            raise ValueError(
                f"router is laid out for {router.shards} shards, queue has {shards}"
            )
        self.router = router
        self.queues = [EventQueue() for _ in range(shards)]
        # One global sequence counter shared by every shard: events get
        # the same seq they would in a single queue, making ordering
        # keys globally unique and the merge order exact.
        counter = self.queues[0]._counter
        for queue in self.queues[1:]:
            queue._counter = counter
        self._pushed = [0] * shards
        self._popped = [0] * shards
        #: MAPE epochs completed (CONTROLLER_TICK events popped)
        self.epochs = 0

    @property
    def shards(self) -> int:
        return len(self.queues)

    # ------------------------------------------------------------------
    # EventQueue API
    # ------------------------------------------------------------------
    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        index = self.router.route(kind, payload)
        self._pushed[index] += 1
        return self.queues[index].push(time, kind, payload)

    def cancel(self, event: Event) -> None:
        self.queues[self.router.route(event.kind, event.payload)].cancel(event)

    def cancel_for_payload(
        self, payload: Any, kind: EventKind | None = None
    ) -> int:
        if kind is not None:
            queue = self.queues[self.router.route(kind, payload)]
            return queue.cancel_for_payload(payload, kind)
        return sum(q.cancel_for_payload(payload, kind) for q in self.queues)

    def pop(self) -> Event:
        best = -1
        best_key: tuple[float, int, int] | None = None
        for index, queue in enumerate(self.queues):
            key = queue.peek_key()
            if key is not None and (best_key is None or key < best_key):
                best_key = key
                best = index
        if best < 0:
            raise IndexError("pop from empty ShardedEventQueue")
        event = self.queues[best].pop()
        self._popped[best] += 1
        if event.kind is EventKind.CONTROLLER_TICK:
            self.epochs += 1
        return event

    def peek_time(self) -> float | None:
        times = [t for t in (q.peek_time() for q in self.queues) if t is not None]
        return min(times) if times else None

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues)

    def __bool__(self) -> bool:
        return any(self.queues)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard load counters (for balance reporting and tests)."""
        return [
            {
                "shard": index,
                "pushed": self._pushed[index],
                "popped": self._popped[index],
                "pending": len(queue),
            }
            for index, queue in enumerate(self.queues)
        ]
