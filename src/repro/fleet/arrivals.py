"""Workflow arrival processes for multi-tenant fleet simulation.

A fleet run is driven by a stream of :class:`Submission` objects — one
per tenant — produced by an :class:`ArrivalProcess`. Three processes are
provided, mirroring the workload-of-workflows literature (Ilyushkin et
al., arXiv:1905.10270): memoryless Poisson arrivals, bursty arrivals
(synchronized waves separated by quiet gaps), and trace-driven arrivals
replaying an explicit submission timeline.

Determinism: arrival times and per-tenant workflow seeds derive from the
fleet seed through labelled sub-streams (:mod:`repro.util.rng`), so a
submission schedule is a pure function of ``(process, seed)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.util.rng import derive_seed, spawn_rng
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "PoissonArrivals",
    "Submission",
    "TraceArrivals",
]


@dataclass(frozen=True)
class Submission:
    """One tenant's workflow submission.

    ``workload`` names the workload to realize (resolved by the fleet
    engine against its workload mapping); ``workflow_seed`` realizes the
    spec so two tenants submitting the same workload still run distinct
    datasets (the paper's cross-run variability, Observation 2).
    ``priority`` is consumed by the priority allocation policy (lower
    fires first); the other policies ignore it.
    """

    tenant_id: str
    workload: str
    submit_time: float
    workflow_seed: int
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        check_non_negative("submit_time", self.submit_time)


class ArrivalProcess(ABC):
    """A reproducible generator of tenant submissions.

    Subclasses produce arrival *times*; this base class turns them into
    :class:`Submission` objects with round-robin workload assignment,
    cycled priorities, and per-tenant workflow seeds derived from the
    fleet seed.
    """

    #: short name used in reports ("poisson", "bursty", "trace")
    name: str = "arrivals"

    def __init__(
        self,
        workloads: Sequence[str],
        *,
        priority_levels: int = 2,
    ) -> None:
        if not workloads:
            raise ValueError("at least one workload name is required")
        if not isinstance(priority_levels, int) or priority_levels < 1:
            raise ValueError(
                f"priority_levels must be a positive int, got {priority_levels!r}"
            )
        self.workloads = tuple(workloads)
        self.priority_levels = priority_levels

    @abstractmethod
    def arrival_times(self, seed: int) -> tuple[float, ...]:
        """Non-decreasing submission times for this seed."""

    def generate(self, seed: int) -> tuple[Submission, ...]:
        """Realize the submission stream for ``seed``."""
        submissions = []
        for index, at in enumerate(self.arrival_times(seed)):
            tenant_id = f"t{index:02d}"
            submissions.append(
                Submission(
                    tenant_id=tenant_id,
                    workload=self.workloads[index % len(self.workloads)],
                    submit_time=at,
                    workflow_seed=derive_seed(seed, f"fleet/{tenant_id}/workflow"),
                    priority=index % self.priority_levels,
                )
            )
        return tuple(submissions)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential interarrival gaps.

    ``rate`` is the mean arrival rate in workflows per hour; the first
    tenant submits at t=0 (a fleet starts with work in hand) and each
    subsequent gap is an independent Exponential(3600/rate) draw.
    """

    name = "poisson"

    def __init__(
        self,
        rate: float,
        count: int,
        workloads: Sequence[str],
        *,
        priority_levels: int = 2,
    ) -> None:
        super().__init__(workloads, priority_levels=priority_levels)
        check_positive("rate", rate)
        if not isinstance(count, int) or count < 1:
            raise ValueError(f"count must be a positive int, got {count!r}")
        self.rate = rate
        self.count = count

    def arrival_times(self, seed: int) -> tuple[float, ...]:
        rng = spawn_rng(seed, "fleet/arrivals")
        mean_gap = 3600.0 / self.rate
        times = [0.0]
        for _ in range(self.count - 1):
            times.append(times[-1] + float(rng.exponential(mean_gap)))
        return tuple(times)


class BurstyArrivals(ArrivalProcess):
    """Synchronized waves: ``burst_size`` simultaneous submissions per
    burst, bursts separated by a fixed ``gap`` in seconds.

    Models the flash-crowd pattern that stresses shared-site admission:
    within one burst every tenant arrives at the same instant and
    contends for the same free-slot index.
    """

    name = "bursty"

    def __init__(
        self,
        burst_size: int,
        n_bursts: int,
        gap: float,
        workloads: Sequence[str],
        *,
        priority_levels: int = 2,
    ) -> None:
        super().__init__(workloads, priority_levels=priority_levels)
        if not isinstance(burst_size, int) or burst_size < 1:
            raise ValueError(f"burst_size must be a positive int, got {burst_size!r}")
        if not isinstance(n_bursts, int) or n_bursts < 1:
            raise ValueError(f"n_bursts must be a positive int, got {n_bursts!r}")
        check_positive("gap", gap)
        self.burst_size = burst_size
        self.n_bursts = n_bursts
        self.gap = gap

    def arrival_times(self, seed: int) -> tuple[float, ...]:
        return tuple(
            burst * self.gap
            for burst in range(self.n_bursts)
            for _ in range(self.burst_size)
        )


class TraceArrivals(ArrivalProcess):
    """Replay an explicit submission timeline (trace-driven arrivals)."""

    name = "trace"

    def __init__(
        self,
        times: Sequence[float],
        workloads: Sequence[str],
        *,
        priority_levels: int = 2,
    ) -> None:
        super().__init__(workloads, priority_levels=priority_levels)
        if not times:
            raise ValueError("at least one arrival time is required")
        ordered = tuple(float(t) for t in times)
        if any(t < 0 for t in ordered):
            raise ValueError("arrival times must be >= 0")
        if any(b < a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("arrival times must be non-decreasing")
        self.times = ordered

    def arrival_times(self, seed: int) -> tuple[float, ...]:
        return self.times
