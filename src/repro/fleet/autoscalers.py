"""Global pool-sizing policies for the shared-site fleet.

The single-workflow autoscalers receive an :class:`~repro.engine.control.
Observation` bound to one master/monitor pair; a fleet tick instead hands
the policy a :class:`FleetObservation` over *all* active tenants. The
headline policy is :class:`GlobalWireAutoscaler`: every tenant keeps its
own per-stage predictors and lookahead (the paper's §III-B components,
unchanged), and the global steering step concatenates the per-tenant
``Q_task`` forecasts into one summed load before running Algorithms 2/3
once for the whole site. Static and reactive shared-site baselines
complete the comparison set.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cloud.billing import BillingModel
from repro.cloud.instance import Instance
from repro.cloud.pool import InstancePool
from repro.cloud.site import CloudSite
from repro.core.config import WireConfig
from repro.core.lookahead import LookaheadSimulator, VirtualInstance
from repro.core.predictor import SharedEvalCache, TaskPredictor
from repro.core.runstate import RunState
from repro.core.steering import SteeringPolicy, resize_pool, steer_inputs_for
from repro.engine.control import NO_CHANGE, ScalingDecision, TerminationOrder
from repro.engine.master import TaskExecState
from repro.fleet.tenant import TenantRun
from repro.telemetry.records import TickTelemetry

__all__ = [
    "FleetAutoscaler",
    "FleetObservation",
    "FleetReactiveAutoscaler",
    "FleetStaticAutoscaler",
    "GlobalWireAutoscaler",
    "fleet_autoscaler",
    "fleet_autoscaler_factories",
]


@dataclass
class FleetObservation:
    """Snapshot handed to a fleet autoscaler at a control tick.

    ``tenants`` are the *active* tenants (admitted, not finished) in
    arrival order; ``owner`` maps every scoped task id on the shared pool
    back to its ``(tenant, local_task_id)`` pair so a policy can reason
    about an instance's occupants across tenant boundaries.
    """

    now: float
    window_start: float
    tenants: tuple[TenantRun, ...]
    waiting_count: int
    pool: InstancePool
    billing: BillingModel
    site: CloudSite
    owner: Mapping[str, tuple[TenantRun, str]]
    draining_ids: frozenset[str] = field(default_factory=frozenset)
    monitor_blackout: bool = False

    @property
    def charging_unit(self) -> float:
        return self.billing.charging_unit

    @property
    def lag(self) -> float:
        return self.site.lag

    def steerable_instances(self) -> list[Instance]:
        """RUNNING instances not already scheduled for termination."""
        return [
            i
            for i in self.pool.running()
            if i.instance_id not in self.draining_ids
        ]

    def effective_pool_size(self) -> int:
        return len(self.steerable_instances()) + len(self.pool.pending())

    def runnable_task_count(self) -> int:
        """Ready or in-flight tasks summed over the active tenants."""
        total = 0
        for tenant in self.tenants:
            master = tenant.master
            total += (
                master.count(TaskExecState.READY)
                + master.count(TaskExecState.STAGING_IN)
                + master.count(TaskExecState.EXECUTING)
                + master.count(TaskExecState.STAGING_OUT)
            )
        return total


class FleetAutoscaler(ABC):
    """A shared-site pool-sizing policy driven by fleet observations."""

    #: short name used in CLI flags and reports
    name: str = "fleet-autoscaler"

    @abstractmethod
    def plan(self, obs: FleetObservation) -> ScalingDecision:
        """Compute pool changes for the upcoming interval."""

    def initial_pool_size(self, site: CloudSite) -> int:
        """Instances to provision before the first arrival (default: one)."""
        return min(1, site.max_instances)

    def tick_telemetry(self) -> TickTelemetry | None:
        """Controller detail of the last tick (traced runs only)."""
        return None


class GlobalWireAutoscaler(FleetAutoscaler):
    """WIRE generalized to summed predicted load over N tenants.

    Per tenant: the unmodified §III-B pipeline — observe the interval,
    rebuild the run state, project one control interval ahead. The
    projection sees (a) the real steerable instances *as this tenant
    experiences them* (one virtual host per real instance carrying its
    tasks, sized to exactly those slots) and (b) a synthetic host holding
    the tenant's fair share of the site's free capacity, so concurrent
    tenants don't all claim the same free slots in their private
    projections. The per-tenant ``Q_task`` lists are then concatenated in
    arrival order and Algorithms 2/3 run once on the summed load.
    """

    name = "global-wire"

    def __init__(self, config: WireConfig | None = None) -> None:
        self.config = config or WireConfig()
        self._steering = SteeringPolicy(self.config.restart_threshold_fraction)
        #: tenant_id -> (predictor, lookahead); tenants bind lazily on
        #: their first observed tick and keep their models run-long
        self._states: dict[str, tuple[TaskPredictor, LookaheadSimulator]] = {}
        #: one content-addressed OGD evaluation cache for the whole
        #: fleet: tenants running the same genome at the same model state
        #: reuse each other's Policy 5 predictions across ticks
        self._shared_cache = SharedEvalCache()
        self._last_upcoming: list[float] | None = None
        self._last_transfer = 0.0
        self._last_charging_unit = 0.0
        self._last_slots = 1
        self.blackout_ticks = 0
        self.blackout_holds = 0

    def _bind(self, tenant: TenantRun) -> tuple[TaskPredictor, LookaheadSimulator]:
        state = self._states.get(tenant.tenant_id)
        if state is None:
            state = (
                TaskPredictor(
                    tenant.workflow, self.config, shared_cache=self._shared_cache
                ),
                LookaheadSimulator(tenant.workflow),
            )
            self._states[tenant.tenant_id] = state
        return state

    def plan(self, obs: FleetObservation) -> ScalingDecision:
        steerable = obs.steerable_instances()
        pending = obs.pool.pending()
        slots_per_instance = obs.site.itype.slots

        # Fair split of the site's currently-free capacity across the
        # active tenants, so each private projection plans against its
        # share rather than the whole headroom. Earlier arrivals take the
        # remainder slots (deterministic).
        free_capacity = sum(i.free_slots for i in steerable) + (
            len(pending) * slots_per_instance
        )
        n = len(obs.tenants)
        shares: dict[str, int] = {}
        if n:
            base, rem = divmod(free_capacity, n)
            for pos, tenant in enumerate(obs.tenants):
                shares[tenant.tenant_id] = base + (1 if pos < rem else 0)

        if obs.monitor_blackout:
            self.blackout_ticks += 1

        upcoming_parts: list[np.ndarray] = []
        run_states: dict[str, RunState] = {}
        transfer_estimates: list[float] = []
        for tenant in obs.tenants:
            predictor, lookahead = self._bind(tenant)
            # A tenant that arrived mid-window has no data before its
            # submission; clamp the observation window to it.
            window_start = max(obs.window_start, tenant.submitted_at)
            if not obs.monitor_blackout:
                predictor.observe_interval(tenant.monitor, window_start, obs.now)
            run_state = predictor.build_run_state(
                tenant.master, tenant.monitor, obs.now
            )
            run_states[tenant.tenant_id] = run_state
            transfer_estimates.append(run_state.transfer_estimate)

            # The tenant's private view of the shared pool: each real
            # instance appears only as the slots its own tasks hold, plus
            # one synthetic host for its share of the free capacity.
            virtual: list[VirtualInstance] = []
            for instance in steerable:
                locals_here = sorted(
                    local
                    for scoped in instance.occupants
                    for owner, local in (obs.owner[scoped],)
                    if owner is tenant
                )
                if locals_here:
                    virtual.append(
                        VirtualInstance(
                            instance_id=instance.instance_id,
                            slots=len(locals_here),
                            available_at=obs.now,
                            occupants=tuple(locals_here),
                        )
                    )
            share = shares.get(tenant.tenant_id, 0)
            if share > 0:
                virtual.append(
                    VirtualInstance(
                        instance_id=f"~{tenant.tenant_id}",
                        slots=share,
                        available_at=obs.now,
                    )
                )
            load = lookahead.project(
                run_state,
                virtual,
                tenant.scheduler.snapshot(),
                horizon=obs.lag,
            )
            upcoming_parts.append(load.remaining)

        # per-tenant Q_task columns concatenated in arrival order — the
        # summed fleet load as one flat float64 vector
        upcoming = (
            np.concatenate(upcoming_parts)
            if upcoming_parts
            else np.empty(0, dtype=np.float64)
        )

        # Restart cost c_j at the charge boundary, maxed over *all*
        # occupants regardless of owning tenant: releasing an instance
        # kills every tenant's tasks on it alike.
        def estimate_of(scoped: str):
            tenant, local = obs.owner[scoped]
            return run_states[tenant.tenant_id].estimates[local]

        steer_inputs = steer_inputs_for(
            steerable, obs.billing, obs.now, estimate_of
        )

        self._last_upcoming = upcoming.tolist()
        self._last_transfer = (
            sum(transfer_estimates) / len(transfer_estimates)
            if transfer_estimates
            else 0.0
        )
        self._last_charging_unit = obs.charging_unit
        self._last_slots = slots_per_instance

        decision = self._steering.decide(
            now=obs.now,
            upcoming_remaining=upcoming,
            instances=steer_inputs,
            pending_count=len(pending),
            charging_unit=obs.charging_unit,
            lag=obs.lag,
            slots_per_instance=slots_per_instance,
            min_instances=max(1, obs.site.min_instances),
            max_instances=obs.site.max_instances,
        )
        # Same blackout rule as the single-workflow controller: never
        # shrink on a stale model.
        if obs.monitor_blackout and decision.terminations:
            self.blackout_holds += 1
            decision = NO_CHANGE
        return decision

    def tick_telemetry(self) -> TickTelemetry | None:
        upcoming = self._last_upcoming
        if upcoming is None:
            return None
        target = resize_pool(
            upcoming,
            self._last_charging_unit,
            self._last_slots,
            tail_threshold_fraction=self._steering.restart_threshold_fraction,
        )
        return TickTelemetry(
            target_pool=target,
            q_task=len(upcoming),
            q_remaining=sum(upcoming),
            transfer_estimate=self._last_transfer,
        )


class FleetStaticAutoscaler(FleetAutoscaler):
    """Whole site up for the whole fleet run (shared full-site baseline)."""

    name = "global-static"

    def initial_pool_size(self, site: CloudSite) -> int:
        return site.max_instances

    def plan(self, obs: FleetObservation) -> ScalingDecision:
        return NO_CHANGE


class FleetReactiveAutoscaler(FleetAutoscaler):
    """One slot per runnable task summed over tenants, immediate releases."""

    name = "global-reactive"

    def plan(self, obs: FleetObservation) -> ScalingDecision:
        slots = obs.site.itype.slots
        load = obs.runnable_task_count()
        target = max(
            max(1, obs.site.min_instances),
            min(math.ceil(load / slots), obs.site.max_instances),
        )
        current = obs.effective_pool_size()
        if target > current:
            return ScalingDecision(launch=target - current)
        if target == current:
            return ScalingDecision()
        candidates = sorted(
            obs.steerable_instances(),
            key=lambda i: (len(i.occupants), i.instance_id),
        )
        orders = tuple(
            TerminationOrder(instance_id=i.instance_id, at=obs.now)
            for i in candidates[: current - target]
        )
        return ScalingDecision(terminations=orders)


_FACTORIES: dict[str, type[FleetAutoscaler]] = {
    GlobalWireAutoscaler.name: GlobalWireAutoscaler,
    FleetStaticAutoscaler.name: FleetStaticAutoscaler,
    FleetReactiveAutoscaler.name: FleetReactiveAutoscaler,
}


def fleet_autoscaler_factories() -> dict[str, type[FleetAutoscaler]]:
    """Name -> zero-arg factory for every shared-site policy."""
    return dict(_FACTORIES)


def fleet_autoscaler(name: str) -> FleetAutoscaler:
    """Instantiate a fleet policy by CLI name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        options = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown fleet autoscaler {name!r} (options: {options})")
