"""Multi-tenant workflow fleet: shared-site simulation with global WIRE.

WIRE (CLUSTER 2021) sizes a pool for one workflow at a time; this
package scales the reproduction to a *workload of workflows* (Ilyushkin
et al., arXiv:1905.10270): a stream of submissions — Poisson, bursty, or
trace-driven — shares one :class:`~repro.cloud.site.CloudSite`, pool,
and billing clock. Each tenant keeps its own per-stage predictors and
lookahead; a global steering step concatenates the per-tenant ``Q_task``
forecasts and runs Algorithms 2/3 once on the summed load. Pluggable
allocation policies (FIFO, fair-share, priority) decide which tenant
each free slot feeds, and the shared bill is attributed back to tenants
proportionally to their busy slot-seconds per instance.

Entry points: :func:`~repro.fleet.harness.run_fleet` (one call does it
all), :class:`~repro.fleet.engine.FleetSimulation` (the engine itself),
and the ``repro fleet`` CLI subcommand.
"""

from repro.fleet.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    Submission,
    TraceArrivals,
)
from repro.fleet.autoscalers import (
    FleetAutoscaler,
    FleetObservation,
    FleetReactiveAutoscaler,
    FleetStaticAutoscaler,
    GlobalWireAutoscaler,
    fleet_autoscaler,
    fleet_autoscaler_factories,
)
from repro.fleet.engine import FleetSimulation
from repro.fleet.harness import (
    DEFAULT_FLEET_WORKLOADS,
    fleet_workload_catalog,
    make_arrivals,
    resume_fleet,
    run_fleet,
)
from repro.fleet.policies import (
    AllocationPolicy,
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    allocation_policy,
)
from repro.fleet.result import FleetResult
from repro.fleet.shard import ShardedEventQueue, TenantShardRouter, shard_of
from repro.fleet.tenant import TenantResult, TenantRun

__all__ = [
    "AllocationPolicy",
    "ArrivalProcess",
    "BurstyArrivals",
    "DEFAULT_FLEET_WORKLOADS",
    "FairSharePolicy",
    "FifoPolicy",
    "FleetAutoscaler",
    "FleetObservation",
    "FleetReactiveAutoscaler",
    "FleetResult",
    "FleetSimulation",
    "FleetStaticAutoscaler",
    "GlobalWireAutoscaler",
    "PoissonArrivals",
    "PriorityPolicy",
    "ShardedEventQueue",
    "Submission",
    "TenantResult",
    "TenantRun",
    "TenantShardRouter",
    "TraceArrivals",
    "allocation_policy",
    "fleet_autoscaler",
    "fleet_autoscaler_factories",
    "fleet_workload_catalog",
    "make_arrivals",
    "resume_fleet",
    "run_fleet",
    "shard_of",
]
