"""Slot-allocation policies for the shared-site fleet.

When a free slot opens on the shared pool, the fleet engine must decide
*which tenant* gets it (each tenant keeps its own FIFO task queue, so
within a tenant the existing scheduler ordering applies unchanged). A
policy picks among the active tenants that currently have runnable
work. All tie-breaks bottom out on the tenant's arrival index, keeping
dispatch fully deterministic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.tenant import TenantRun

__all__ = [
    "AllocationPolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "allocation_policy",
]


class AllocationPolicy(ABC):
    """Chooses which tenant receives the next free slot."""

    #: short name used in CLI flags and reports
    name: str = "policy"

    @abstractmethod
    def choose(self, candidates: Sequence["TenantRun"]) -> "TenantRun":
        """Pick one tenant from ``candidates`` (non-empty, all runnable)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FifoPolicy(AllocationPolicy):
    """First-come-first-served over tenant submission times."""

    name = "fifo"

    def choose(self, candidates: Sequence["TenantRun"]) -> "TenantRun":
        return min(candidates, key=lambda t: (t.submitted_at, t.index))


class FairSharePolicy(AllocationPolicy):
    """Max-min fairness: the tenant holding the fewest slots goes first.

    Repeatedly granting the next slot to the currently least-served
    tenant converges to the max-min fair allocation over the active
    set; ties fall back to FIFO order.
    """

    name = "fair-share"

    def choose(self, candidates: Sequence["TenantRun"]) -> "TenantRun":
        return min(
            candidates,
            key=lambda t: (t.occupied_slots, t.submitted_at, t.index),
        )


class PriorityPolicy(AllocationPolicy):
    """Strict priority (lower value first), FIFO within a level."""

    name = "priority"

    def choose(self, candidates: Sequence["TenantRun"]) -> "TenantRun":
        return min(
            candidates,
            key=lambda t: (t.priority, t.submitted_at, t.index),
        )


_POLICIES: dict[str, type[AllocationPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    FairSharePolicy.name: FairSharePolicy,
    PriorityPolicy.name: PriorityPolicy,
}


def allocation_policy(name: str) -> AllocationPolicy:
    """Instantiate a policy by CLI name ("fifo", "fair-share", "priority")."""
    try:
        return _POLICIES[name]()
    except KeyError:
        options = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown allocation policy {name!r} (options: {options})")
