"""Multi-tenant discrete-event fleet engine.

Runs N concurrent workflow submissions on ONE shared
:class:`~repro.cloud.site.CloudSite` / pool / billing clock, driven by a
single :class:`~repro.engine.events.EventQueue`. Each tenant keeps the
full single-workflow control stack (framework master, monitor, FIFO task
queue); the fleet adds three things on top:

- an arrival loop (``WORKFLOW_ARRIVAL`` events admit tenants, optionally
  gated by an admission cap),
- a slot-allocation step (an :class:`~repro.fleet.policies.
  AllocationPolicy` decides which tenant's queue feeds each free slot),
- a global steering tick (a :class:`~repro.fleet.autoscalers.
  FleetAutoscaler` sizes the shared pool from the summed per-tenant
  forecasts).

Task ids are *scoped* (``"t03:stage_2_7"``) on the shared pool and event
queue and *local* inside each tenant's structures; ``_owner`` translates.
The single-workflow :class:`~repro.engine.simulator.Simulation` is left
untouched — fleet mode is a separate entry point sharing its primitives,
and the golden single-workflow suite stays bit-identical.

Determinism mirrors the single-workflow engine: every stochastic model
draws from a per-tenant labelled sub-stream, simultaneous events fire in
scheduling order, and all tie-breaks bottom out on arrival index, so a
fleet run is a pure function of its configuration and seed.
"""

from __future__ import annotations

import time as _time
from typing import Mapping, Sequence

from repro.cloud.faults import ChaosInjector, ChaosSpec
from repro.cloud.billing import BillingModel
from repro.cloud.instance import Instance, InstanceState
from repro.cloud.pool import InstancePool
from repro.cloud.provisioner import Provisioner
from repro.cloud.site import CloudSite
from repro.dag.workflow import Workflow
from repro.engine.control import ScalingDecision
from repro.engine.events import Event, EventKind, EventQueue
from repro.engine.faults import FaultModel, NoFaults
from repro.engine.runtime import NominalRuntimeModel, TaskRuntimeModel
from repro.engine.simulator import _make_validator
from repro.engine.transfer import DataTransferModel, NoTransferModel
from repro.fleet.arrivals import Submission
from repro.fleet.autoscalers import FleetAutoscaler, FleetObservation
from repro.fleet.policies import AllocationPolicy
from repro.fleet.result import FleetResult
from repro.fleet.shard import ShardedEventQueue, TenantShardRouter
from repro.fleet.tenant import TenantResult, TenantRun
from repro.telemetry.records import (
    CloudFaultRecord,
    FleetTickRecord,
    InstanceEventRecord,
    RunMetaRecord,
    RunSummaryRecord,
    TaskAttemptRecord,
    TenantRecord,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.rng import RngStream
from repro.util.validation import check_positive

__all__ = ["FleetSimulation"]


def _realize(workload: object, seed: int) -> Workflow:
    """Turn a workload object into a concrete workflow.

    Accepts a :class:`Workflow` (used as-is), anything with a
    ``generate(seed)`` method (the ``StagedWorkflowSpec`` protocol), or a
    plain callable taking a seed.
    """
    if isinstance(workload, Workflow):
        return workload
    generate = getattr(workload, "generate", None)
    if callable(generate):
        return generate(seed)
    if callable(workload):
        return workload(seed)
    raise TypeError(
        f"cannot realize workload of type {type(workload).__name__}: expected "
        "a Workflow, an object with generate(seed), or a callable"
    )


class FleetSimulation:
    """One multi-tenant fleet run under one global autoscaling policy.

    Parameters
    ----------
    submissions:
        The arrival stream (from an :class:`~repro.fleet.arrivals.
        ArrivalProcess`, or hand-built).
    workloads:
        Name -> workload mapping resolving each submission's ``workload``
        field; values may be concrete workflows, spec objects with
        ``generate(seed)``, or seed-taking callables.
    site, autoscaler, policy, charging_unit:
        Where to run, the global pool-sizing policy, the slot-allocation
        policy, and the billing unit *u* in seconds.
    max_active:
        Admission cap: at most this many tenants hold slots concurrently;
        excess arrivals wait and are admitted in allocation-policy order.
        ``None`` (default) admits everyone on arrival.
    chaos:
        Cloud-fault injection (:mod:`repro.cloud.faults`); revocations
        kill whichever tenants occupy the doomed instance.
    validate:
        Runtime invariant checking (:mod:`repro.validate`), with the
        same zero-cost-when-disabled contract as the single-workflow
        engine: ``None``/``False`` (default) stores no checker and pays
        one ``is not None`` check per event; ``True`` attaches a default
        raise-mode checker; a checker instance is used as-is.
    shards:
        Partition the event queue across this many per-site shards
        (:mod:`repro.fleet.shard`); tenants hash onto shards by id and
        pops run a deterministic cross-shard merge, so any shard count
        yields bit-identical results to the default single queue.

    Other parameters mirror :class:`~repro.engine.simulator.Simulation`.
    """

    def __init__(
        self,
        submissions: Sequence[Submission],
        workloads: Mapping[str, object],
        site: CloudSite,
        autoscaler: FleetAutoscaler,
        policy: AllocationPolicy,
        charging_unit: float,
        *,
        transfer_model: DataTransferModel | None = None,
        runtime_model: TaskRuntimeModel | None = None,
        fault_model: FaultModel | None = None,
        controller_period: float | None = None,
        boost_k: int = 5,
        launch_jitter: float = 0.0,
        seed: int = 0,
        max_time: float = 1e8,
        max_active: int | None = None,
        tracer: Tracer | None = None,
        chaos: ChaosSpec | None = None,
        validate: object = None,
        shards: int = 1,
    ) -> None:
        check_positive("charging_unit", charging_unit)
        check_positive("max_time", max_time)
        if not submissions:
            raise ValueError("a fleet needs at least one submission")
        if max_active is not None and max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        self.site = site
        self.autoscaler = autoscaler
        self.policy = policy
        self.billing = BillingModel(charging_unit)
        self.transfer_model = transfer_model or NoTransferModel()
        self.runtime_model = runtime_model or NominalRuntimeModel()
        self.fault_model = fault_model or NoFaults()
        self.period = controller_period if controller_period is not None else site.lag
        check_positive("controller_period", self.period)
        if not 0.0 <= launch_jitter <= 1.0:
            raise ValueError(
                f"launch_jitter must be in [0, 1], got {launch_jitter!r}"
            )
        self.launch_jitter = launch_jitter
        self.max_time = max_time
        self.max_active = max_active
        self._seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self.tracer.enabled

        rng = RngStream(seed=seed, label="fleet")
        self._rng_launch = rng.child("launch").generator()
        self.chaos = chaos
        if chaos is not None and chaos.enabled:
            self._chaos_injector: ChaosInjector | None = ChaosInjector(
                chaos, rng.child("chaos").generator()
            )
        else:
            self._chaos_injector = None
        self.validator = _make_validator(validate)
        self._cloud_faults: dict[str, int] = {}
        self._provision_attempts: dict[str, int] = {}

        # Realize every tenant up front: workflows, per-tenant RNG
        # sub-streams, and the scoped-id ownership index.
        self.tenants: list[TenantRun] = []
        self._owner: dict[str, tuple[TenantRun, str]] = {}
        for index, submission in enumerate(sorted(
            submissions, key=lambda s: (s.submit_time, s.tenant_id)
        )):
            try:
                workload = workloads[submission.workload]
            except KeyError:
                raise ValueError(
                    f"submission {submission.tenant_id!r} names unknown "
                    f"workload {submission.workload!r}"
                )
            tenant_rng = rng.child(submission.tenant_id)
            tenant = TenantRun(
                index=index,
                submission=submission,
                workflow=_realize(workload, submission.workflow_seed),
                rng_transfer=tenant_rng.child("transfer").generator(),
                rng_runtime=tenant_rng.child("runtime").generator(),
                rng_faults=tenant_rng.child("faults").generator(),
            )
            self.tenants.append(tenant)
            for local in tenant.workflow.tasks:
                self._owner[tenant.scoped(local)] = (tenant, local)

        self.pool = InstancePool(site.itype, self.billing)
        self.provisioner = Provisioner(site, self.pool)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        if shards > 1:
            router = TenantShardRouter.for_tenants(
                shards, tuple(t.tenant_id for t in self.tenants)
            )
            self.events: EventQueue | ShardedEventQueue = ShardedEventQueue(
                shards, router
            )
        else:
            self.events = EventQueue()
        self.boost_k = boost_k

        self._started = False
        self._now = 0.0
        self._events_processed = 0
        self._arrivals_pending = len(self.tenants)
        self._active: dict[int, TenantRun] = {}
        self._waiting: list[TenantRun] = []
        self._draining: set[str] = set()
        self._pending_task_event: dict[str, Event] = {}
        #: scoped task id -> slot assignment time (busy-share attribution)
        self._assign_at: dict[str, float] = {}
        #: (instance_id, tenant index) -> busy slot-seconds accrued
        self._tenant_busy: dict[tuple[str, int], float] = {}
        self._timeline: list[tuple[float, int]] = []
        self._last_completion = 0.0
        self._ticks = 0
        self._controller_seconds = 0.0
        self._last_tick_time = 0.0
        self._observe_from: float | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        checkpoint_every: int | None = None,
        checkpoint_path: object = None,
        stop_after_checkpoint: bool = False,
    ) -> FleetResult | None:
        """Execute every submission to completion and return measurements.

        With ``checkpoint_every=N`` the full engine state is serialized
        to ``checkpoint_path`` (see :mod:`repro.checkpoint`) at every
        N-th controller tick — a deterministic cut point: the MAPE epoch
        barrier, after the tick's decision is applied and validated.
        ``stop_after_checkpoint=True`` returns ``None`` right after the
        first checkpoint is written (the CI resume job uses this to
        simulate an interrupted run). Calling ``run()`` on a restored
        simulation continues from the cut; the completed run is
        byte-identical to an uninterrupted one.
        """
        if checkpoint_every is not None:
            check_positive("checkpoint_every", checkpoint_every)
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires a checkpoint_path")
            from repro.checkpoint import save_checkpoint
        validator = self.validator
        if not self._started:
            self._started = True
            self._bootstrap()
            if validator is not None:
                validator.begin_run(self)
        completed = True
        while not self._fleet_done():
            if not self.events:
                raise RuntimeError(
                    "event queue drained before fleet completion "
                    f"(at t={self._now}); the pool can no longer make progress"
                )
            event = self.events.pop()
            if event.time > self.max_time:
                completed = False
                break
            self._now = event.time
            self._events_processed += 1
            self._handle(event)
            if validator is not None:
                validator.after_event(self, event)
            if (
                checkpoint_every is not None
                and event.kind is EventKind.CONTROLLER_TICK
                and self._ticks > 0
                and self._ticks % checkpoint_every == 0
                and not self._fleet_done()
            ):
                save_checkpoint(self, checkpoint_path)
                if stop_after_checkpoint:
                    return None
        result = self._finalize(completed)
        if validator is not None:
            validator.check_final(self, result)
        return result

    def _fleet_done(self) -> bool:
        return (
            self._arrivals_pending == 0
            and not self._active
            and not self._waiting
        )

    # ------------------------------------------------------------------
    # setup / teardown
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        if self._trace:
            self.tracer.emit(
                RunMetaRecord(
                    workflow=f"fleet:{len(self.tenants)}",
                    policy=self.autoscaler.name,
                    charging_unit=self.billing.charging_unit,
                    seed=self._seed,
                    site=self.site.name,
                    max_instances=self.site.max_instances,
                    lag=self.site.lag,
                    period=self.period,
                    n_tasks=sum(len(t.workflow) for t in self.tenants),
                    n_stages=sum(len(t.workflow.stages) for t in self.tenants),
                    slots_per_instance=self.site.itype.slots,
                    runtime_model=getattr(
                        self.runtime_model, "name", type(self.runtime_model).__name__
                    ),
                )
            )
        initial = self.autoscaler.initial_pool_size(self.site)
        initial = max(self.site.min_instances, min(initial, self.site.max_instances))
        for _ in range(initial):
            instance = self.pool.create(now=0.0)
            instance.mark_running(0.0)
            if self._chaos_injector is not None:
                self._chaos_instance_started(instance)
            if self._trace:
                iid = instance.instance_id
                self.tracer.emit(
                    InstanceEventRecord(now=0.0, instance_id=iid, event="requested")
                )
                self.tracer.emit(
                    InstanceEventRecord(now=0.0, instance_id=iid, event="provisioned")
                )
        self._record_pool_change(0.0)
        for tenant in self.tenants:
            self.events.push(
                tenant.submitted_at, EventKind.WORKFLOW_ARRIVAL, tenant.index
            )
        self.events.push(self.period, EventKind.CONTROLLER_TICK)

    def _finalize(self, completed: bool) -> FleetResult:
        makespan = self._last_completion if completed else self._now
        for instance in self.pool:
            if instance.state is InstanceState.RUNNING:
                for scoped in sorted(instance.occupants):
                    # Only possible on an incomplete (timed-out) run.
                    tenant, local = self._owner[scoped]
                    tenant.monitor.record_kill(local, makespan)
                    if self._trace:
                        self._emit_attempt(tenant, local, scoped, "killed", makespan)
                    self._accrue_busy(instance.instance_id, tenant, scoped, makespan)
                    instance.release(scoped, makespan)
                    tenant.occupied_slots -= 1
                end = max(makespan, instance.started_at or 0.0)
                instance.mark_terminated(end)
                if self._trace:
                    self._emit_instance_end(instance, end, "terminated")
            elif instance.state is InstanceState.PENDING:
                instance.cancel_pending()
                if self._trace:
                    self.tracer.emit(
                        InstanceEventRecord(
                            now=makespan,
                            instance_id=instance.instance_id,
                            event="cancelled",
                        )
                    )

        # Proportional cost attribution: each instance's bill splits
        # across tenants by their busy slot-seconds on it; instances that
        # never ran a task have no share key and bill to the operator.
        attributed_cost = [0.0] * len(self.tenants)
        attributed_units = [0.0] * len(self.tenants)
        attributed_wasted = [0.0] * len(self.tenants)
        unattributed_cost = 0.0
        for instance in self.pool:
            if instance.started_at is None:
                continue  # cancelled pending launch: never billed
            iid = instance.instance_id
            cost = self.billing.cost(instance, makespan)
            units = self.billing.units_charged(instance, makespan)
            wasted = self.billing.wasted_time(instance, makespan)
            shares = {
                tenant.index: self._tenant_busy[(iid, tenant.index)]
                for tenant in self.tenants
                if self._tenant_busy.get((iid, tenant.index), 0.0) > 0.0
            }
            total_busy = sum(shares.values())
            if total_busy <= 0.0:
                unattributed_cost += cost
                continue
            for index, busy in shares.items():
                fraction = busy / total_busy
                attributed_cost[index] += fraction * cost
                attributed_units[index] += fraction * units
                attributed_wasted[index] += fraction * wasted

        tenant_results = []
        for tenant in self.tenants:
            finished = tenant.finished_at if tenant.finished_at is not None else makespan
            started = tenant.started_at if tenant.started_at is not None else finished
            response = max(0.0, finished - tenant.submitted_at)
            slowdown = (
                response / tenant.critical_path if tenant.critical_path > 0 else 0.0
            )
            queue_wait_mean = (
                sum(tenant.queue_waits) / len(tenant.queue_waits)
                if tenant.queue_waits
                else 0.0
            )
            tenant_results.append(
                TenantResult(
                    tenant_id=tenant.tenant_id,
                    workload=tenant.submission.workload,
                    priority=tenant.priority,
                    submitted_at=tenant.submitted_at,
                    finished_at=finished,
                    makespan=max(0.0, finished - started),
                    critical_path=tenant.critical_path,
                    slowdown=slowdown,
                    queue_wait_mean=queue_wait_mean,
                    tasks=len(tenant.workflow),
                    restarts=tenant.monitor.total_restarts(),
                    attributed_cost=attributed_cost[tenant.index],
                    attributed_units=attributed_units[tenant.index],
                    attributed_wasted_seconds=attributed_wasted[tenant.index],
                    completed=tenant.finished_at is not None,
                )
            )

        busy = sum(
            a.occupancy_elapsed(makespan)
            for tenant in self.tenants
            for a in tenant.monitor.all_attempts()
        )
        paid_slot_seconds = sum(
            self.billing.units_charged(i, makespan)
            * self.billing.charging_unit
            * i.itype.slots
            for i in self.pool
            if i.started_at is not None
        )
        utilization = busy / paid_slot_seconds if paid_slot_seconds > 0 else 0.0
        result = FleetResult(
            autoscaler_name=self.autoscaler.name,
            allocation_policy=self.policy.name,
            charging_unit=self.billing.charging_unit,
            seed=self._seed,
            n_tenants=len(self.tenants),
            makespan=makespan,
            completed=completed,
            total_units=self.pool.total_units(makespan),
            total_cost=self.pool.total_cost(makespan),
            wasted_seconds=self.pool.total_wasted_time(makespan),
            unattributed_cost=unattributed_cost,
            utilization=min(1.0, utilization),
            peak_instances=max((c for _, c in self._timeline), default=0),
            instances_launched=len(self.pool),
            restarts=sum(t.monitor.total_restarts() for t in self.tenants),
            ticks=self._ticks,
            events_processed=self._events_processed,
            cloud_faults=dict(self._cloud_faults),
            tenants=tuple(tenant_results),
            controller_cpu_seconds=self._controller_seconds,
        )
        if self._trace:
            for tr in tenant_results:
                self.tracer.emit(
                    TenantRecord(
                        now=makespan,
                        tenant_id=tr.tenant_id,
                        workload=tr.workload,
                        priority=tr.priority,
                        submitted_at=tr.submitted_at,
                        finished_at=tr.finished_at,
                        makespan=tr.makespan,
                        slowdown=tr.slowdown,
                        queue_wait_mean=tr.queue_wait_mean,
                        tasks=tr.tasks,
                        restarts=tr.restarts,
                        attributed_cost=tr.attributed_cost,
                        attributed_units=tr.attributed_units,
                        attributed_wasted_seconds=tr.attributed_wasted_seconds,
                        completed=tr.completed,
                    )
                )
            self.tracer.emit(
                RunSummaryRecord(
                    makespan=result.makespan,
                    completed=result.completed,
                    total_units=result.total_units,
                    total_cost=result.total_cost,
                    wasted_seconds=result.wasted_seconds,
                    utilization=result.utilization,
                    peak_instances=result.peak_instances,
                    instances_launched=result.instances_launched,
                    restarts=result.restarts,
                    ticks=result.ticks,
                )
            )
        return result

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------
    def _handle(self, event: Event) -> None:
        if event.kind is EventKind.WORKFLOW_ARRIVAL:
            self._on_workflow_arrival(event.payload)
        elif event.kind is EventKind.INSTANCE_READY:
            self._on_instance_ready(event.payload)
        elif event.kind is EventKind.INSTANCE_TERMINATE:
            self._on_instance_terminate(event.payload)
        elif event.kind is EventKind.STAGE_IN_DONE:
            self._on_stage_in_done(event.payload)
        elif event.kind is EventKind.EXEC_DONE:
            self._on_exec_done(event.payload)
        elif event.kind is EventKind.STAGE_OUT_DONE:
            self._on_stage_out_done(event.payload)
        elif event.kind is EventKind.TASK_FAILED:
            self._on_task_failed(event.payload)
        elif event.kind is EventKind.CONTROLLER_TICK:
            self._on_controller_tick()
        elif event.kind is EventKind.INSTANCE_REVOKED:
            self._on_instance_revoked(event.payload)
        elif event.kind is EventKind.PROVISION_FAILED:
            self._on_provision_failed(event.payload)
        elif event.kind is EventKind.PROVISION_RETRY:
            self._on_provision_retry(event.payload)
        else:  # pragma: no cover - exhaustive enum
            raise RuntimeError(f"unknown event kind {event.kind}")

    # ------------------------------------------------------------------
    # arrivals / admission
    # ------------------------------------------------------------------
    def _on_workflow_arrival(self, index: int) -> None:
        tenant = self.tenants[index]
        self._arrivals_pending -= 1
        if self.max_active is not None and len(self._active) >= self.max_active:
            self._waiting.append(tenant)
            return
        self._activate(tenant)
        self._dispatch()

    def _activate(self, tenant: TenantRun) -> None:
        tenant.started_at = self._now
        self._active[tenant.index] = tenant
        for local in tenant.master.initially_ready():
            tenant.ready_at[local] = self._now
            tenant.scheduler.push(local, tenant.workflow.stage_of[local])

    def _admit_waiting(self) -> None:
        """Fill freed admission slots in allocation-policy order."""
        while self._waiting and (
            self.max_active is None or len(self._active) < self.max_active
        ):
            tenant = self.policy.choose(self._waiting)
            self._waiting.remove(tenant)
            self._activate(tenant)

    def _finish_tenant(self, tenant: TenantRun) -> None:
        tenant.finished_at = self._now
        del self._active[tenant.index]
        self._admit_waiting()

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------
    def _on_instance_ready(self, instance_id: str) -> None:
        instance = self.pool.get(instance_id)
        instance.mark_running(self._now)
        if self._chaos_injector is not None:
            self._chaos_instance_started(instance)
        if self._trace:
            self.tracer.emit(
                InstanceEventRecord(
                    now=self._now, instance_id=instance_id, event="provisioned"
                )
            )
        self._record_pool_change(self._now)
        self._dispatch()

    def _kill_occupant(
        self, instance: Instance, scoped: str, *, failed: bool = False
    ) -> TenantRun:
        """Kill one occupant, requeue it with its tenant, free the slot."""
        tenant, local = self._owner[scoped]
        pending = self._pending_task_event.pop(scoped, None)
        if pending is not None:
            self.events.cancel(pending)
        tenant.monitor.record_kill(local, self._now, failed=failed)
        if self._trace:
            self._emit_attempt(
                tenant, local, scoped, "failed" if failed else "killed", self._now
            )
        tenant.ready_at[local] = self._now
        tenant.master.mark_killed(local)
        tenant.scheduler.push(
            local, tenant.workflow.stage_of[local], requeue=True
        )
        self._accrue_busy(instance.instance_id, tenant, scoped, self._now)
        instance.release(scoped, self._now)
        tenant.occupied_slots -= 1
        return tenant

    def _on_instance_terminate(self, instance_id: str) -> None:
        instance = self.pool.get(instance_id)
        for scoped in sorted(instance.occupants):
            self._kill_occupant(instance, scoped)
        instance.mark_terminated(self._now)
        if self._chaos_injector is not None:
            self.events.cancel_for_payload(
                instance_id, kind=EventKind.INSTANCE_REVOKED
            )
        if self._trace:
            self._emit_instance_end(instance, self._now, "terminated")
        self._draining.discard(instance_id)
        self._record_pool_change(self._now)
        self._dispatch()

    # ------------------------------------------------------------------
    # cloud-fault handlers (reachable only with an enabled ChaosSpec)
    # ------------------------------------------------------------------
    def _chaos_instance_started(self, instance: Instance) -> None:
        injector = self._chaos_injector
        assert injector is not None
        factor = injector.straggler_factor()
        iid = instance.instance_id
        if factor != 1.0:
            instance.slowdown = factor
            self._count_fault("stragglers")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="straggler",
                        instance_id=iid,
                        slowdown=factor,
                    )
                )
        delay = injector.revocation_delay()
        if delay is not None:
            self.events.push(self._now + delay, EventKind.INSTANCE_REVOKED, iid)

    def _on_instance_revoked(self, instance_id: str) -> None:
        """The provider preempts ``instance_id``; every tenant with a
        task on it takes the hit."""
        instance = self.pool.get(instance_id)
        if instance.state is not InstanceState.RUNNING:
            return
        killed = 0
        lost_occupancy = 0.0
        for scoped in sorted(instance.occupants):
            tenant, local = self._owner[scoped]
            lost_occupancy += tenant.monitor.current_attempt(
                local
            ).occupancy_elapsed(self._now)
            self._kill_occupant(instance, scoped)
            killed += 1
        if instance_id in self._draining:
            self.events.cancel_for_payload(
                instance_id, kind=EventKind.INSTANCE_TERMINATE
            )
            self._draining.discard(instance_id)
        instance.revoked = True
        instance.mark_terminated(self._now)
        self._count_fault("revocations")
        if killed:
            self._count_fault("revocation_task_kills", killed)
        if self._trace:
            self._emit_instance_end(instance, self._now, "revoked")
            _, _, _, _, wasted = self.pool.instance_utilization(
                instance, self._now
            )
            self.tracer.emit(
                CloudFaultRecord(
                    now=self._now,
                    fault="revocation",
                    instance_id=instance_id,
                    tasks_killed=killed,
                    wasted_seconds=wasted,
                    lost_occupancy=lost_occupancy,
                )
            )
        self._record_pool_change(self._now)
        self._dispatch()

    def _on_provision_failed(self, instance_id: str) -> None:
        injector = self._chaos_injector
        assert injector is not None
        attempt = self._provision_attempts.pop(instance_id, 1)
        self.pool.get(instance_id).cancel_pending()
        self._count_fault("provision_failures")
        if self._trace:
            self.tracer.emit(
                InstanceEventRecord(
                    now=self._now, instance_id=instance_id, event="cancelled"
                )
            )
            self.tracer.emit(
                CloudFaultRecord(
                    now=self._now,
                    fault="provision_failure",
                    instance_id=instance_id,
                    attempt=attempt,
                )
            )
        retry = injector.spec.retry
        if attempt <= retry.max_retries:
            backoff = retry.delay(attempt)
            self._count_fault("provision_retries")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="provision_retry",
                        instance_id=instance_id,
                        attempt=attempt,
                        backoff=backoff,
                    )
                )
            self.events.push(
                self._now + backoff, EventKind.PROVISION_RETRY, attempt + 1
            )
        else:
            self._count_fault("provision_abandoned")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="provision_abandoned",
                        instance_id=instance_id,
                        attempt=attempt,
                    )
                )

    def _on_provision_retry(self, attempt: int) -> None:
        orders = self.provisioner.order_launches(1, self._now)
        if not orders:
            self._count_fault("provision_retries_dropped")
            return
        self._issue_launch(orders[0], attempt=attempt)

    def _count_fault(self, key: str, n: int = 1) -> None:
        self._cloud_faults[key] = self._cloud_faults.get(key, 0) + n

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def _on_stage_in_done(self, scoped: str) -> None:
        tenant, local = self._owner[scoped]
        tenant.master.mark_executing(local)
        tenant.monitor.record_exec_start(local, self._now)
        instance = self.pool.instance_of_task(scoped)
        assert instance is not None, f"executing task {scoped} has no instance"
        task = tenant.workflow.task(local)
        attempt = tenant.master.attempts(local)
        duration = self.runtime_model.execution_time(
            task, instance, attempt, tenant.rng_runtime
        )
        if self._chaos_injector is not None and instance.slowdown != 1.0:
            duration *= instance.slowdown
        failure = self.fault_model.failure_offset(
            task, instance, attempt, duration, tenant.rng_faults
        )
        if failure is not None and failure < duration:
            self._pending_task_event[scoped] = self.events.push(
                self._now + failure, EventKind.TASK_FAILED, scoped
            )
        else:
            self._pending_task_event[scoped] = self.events.push(
                self._now + duration, EventKind.EXEC_DONE, scoped
            )

    def _on_exec_done(self, scoped: str) -> None:
        tenant, local = self._owner[scoped]
        tenant.master.mark_staging_out(local)
        tenant.monitor.record_exec_end(local, self._now)
        duration = self.transfer_model.stage_out_time(
            tenant.workflow.task(local), tenant.rng_transfer
        )
        self._pending_task_event[scoped] = self.events.push(
            self._now + duration, EventKind.STAGE_OUT_DONE, scoped
        )

    def _on_stage_out_done(self, scoped: str) -> None:
        tenant, local = self._owner[scoped]
        self._pending_task_event.pop(scoped, None)
        tenant.monitor.record_complete(local, self._now)
        if self._trace:
            self._emit_attempt(tenant, local, scoped, "completed", self._now)
        instance = self.pool.instance_of_task(scoped)
        assert instance is not None, f"completing task {scoped} has no instance"
        self._accrue_busy(instance.instance_id, tenant, scoped, self._now)
        instance.release(scoped, self._now)
        tenant.occupied_slots -= 1
        self._last_completion = self._now
        for child in tenant.master.mark_completed(local):
            tenant.ready_at[child] = self._now
            tenant.scheduler.push(child, tenant.workflow.stage_of[child])
        if tenant.master.is_done():
            self._finish_tenant(tenant)
        self._dispatch()

    def _on_task_failed(self, scoped: str) -> None:
        instance = self.pool.instance_of_task(scoped)
        assert instance is not None, f"failed task {scoped} has no instance"
        self._kill_occupant(instance, scoped, failed=True)
        self._dispatch()

    # ------------------------------------------------------------------
    # global steering
    # ------------------------------------------------------------------
    def _on_controller_tick(self) -> None:
        if self._fleet_done():
            return
        blackout = False
        window_start = self._last_tick_time
        if self._chaos_injector is not None:
            blackout = self._chaos_injector.blackout()
            if blackout:
                self._count_fault("blackouts")
                if self._trace:
                    self.tracer.emit(
                        CloudFaultRecord(now=self._now, fault="monitor_blackout")
                    )
                if (
                    self._observe_from is None
                    and not self._chaos_injector.spec.blackout_drops
                ):
                    self._observe_from = self._last_tick_time
            elif self._observe_from is not None:
                window_start = self._observe_from
                self._observe_from = None
        active = tuple(
            self._active[index] for index in sorted(self._active)
        )
        observation = FleetObservation(
            now=self._now,
            window_start=window_start,
            tenants=active,
            waiting_count=len(self._waiting),
            pool=self.pool,
            billing=self.billing,
            site=self.site,
            owner=self._owner,
            draining_ids=frozenset(self._draining),
            monitor_blackout=blackout,
        )
        pool_before = self.pool.active_size() - len(self._draining)
        started = _time.perf_counter()
        decision = self.autoscaler.plan(observation)
        self._controller_seconds += _time.perf_counter() - started
        self._ticks += 1
        self._last_tick_time = self._now
        terminated = self._apply_decision(decision)
        if self._trace:
            self._emit_tick(decision.launch, terminated, pool_before, active)
        self.events.push(self._now + self.period, EventKind.CONTROLLER_TICK)

    def _apply_decision(self, decision: ScalingDecision) -> int:
        if decision.launch > 0:
            for order in self.provisioner.order_launches(decision.launch, self._now):
                self._issue_launch(order)
        applied = 0
        remaining = self.pool.active_size() - len(self._draining)
        for order in decision.terminations:
            if order.instance_id in self._draining:
                continue
            instance = self.pool.get(order.instance_id)
            if instance.state is not InstanceState.RUNNING:
                continue
            if remaining <= self.site.min_instances:
                break
            at = max(order.at, self._now)
            self._draining.add(order.instance_id)
            self.events.push(at, EventKind.INSTANCE_TERMINATE, order.instance_id)
            remaining -= 1
            applied += 1
        return applied

    def _issue_launch(self, order, attempt: int = 1) -> None:
        ready_at = order.ready_at
        if self.launch_jitter > 0.0:
            lag = order.ready_at - self._now
            ready_at = self._now + lag * (
                1.0 - self.launch_jitter * float(self._rng_launch.random())
            )
        iid = order.instance.instance_id
        if self._trace:
            self.tracer.emit(
                InstanceEventRecord(
                    now=self._now, instance_id=iid, event="requested"
                )
            )
        injector = self._chaos_injector
        if injector is None:
            self.events.push(ready_at, EventKind.INSTANCE_READY, iid)
            return
        outcome = injector.provision_outcome(self._now)
        if outcome == "fail":
            self._provision_attempts[iid] = attempt
            self.events.push(ready_at, EventKind.PROVISION_FAILED, iid)
        elif outcome == "timeout":
            factor = injector.spec.provision_timeout_factor
            delayed = self._now + (ready_at - self._now) * factor
            self._count_fault("provision_timeouts")
            if self._trace:
                self.tracer.emit(
                    CloudFaultRecord(
                        now=self._now,
                        fault="provision_timeout",
                        instance_id=iid,
                        attempt=attempt,
                    )
                )
            self.events.push(delayed, EventKind.INSTANCE_READY, iid)
        else:
            self.events.push(ready_at, EventKind.INSTANCE_READY, iid)

    # ------------------------------------------------------------------
    # task dispatch (the allocation-policy step)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        while True:
            instance = self.pool.best_dispatchable(self._draining)
            if instance is None:
                return
            candidates = [
                tenant
                for tenant in self._active.values()
                if len(tenant.scheduler) > 0
            ]
            if not candidates:
                return
            tenant = self.policy.choose(candidates)
            local = tenant.scheduler.pop()
            assert local is not None
            scoped = tenant.scoped(local)
            task = tenant.workflow.task(local)
            instance.assign(scoped, self._now)
            tenant.occupied_slots += 1
            self._assign_at[scoped] = self._now
            tenant.master.mark_dispatched(local)
            ready = tenant.ready_at.pop(local, None)
            if ready is not None:
                tenant.queue_waits.append(self._now - ready)
            tenant.monitor.record_dispatch(
                local,
                tenant.workflow.stage_of[local],
                instance.instance_id,
                self._now,
                task.input_size,
                task.output_size,
                ready_time=ready,
            )
            duration = self._stage_in_duration(tenant, task, instance)
            self._pending_task_event[scoped] = self.events.push(
                self._now + duration, EventKind.STAGE_IN_DONE, scoped
            )

    def _stage_in_duration(self, tenant: TenantRun, task, instance: Instance) -> float:
        placed = getattr(self.transfer_model, "stage_in_time_placed", None)
        if placed is None:
            return self.transfer_model.stage_in_time(task, tenant.rng_transfer)
        return placed(
            task,
            self._local_input_fraction(tenant, task, instance),
            tenant.rng_transfer,
        )

    def _local_input_fraction(
        self, tenant: TenantRun, task, instance: Instance
    ) -> float:
        parents = tenant.workflow.parents(task.task_id)
        if not parents:
            return 0.0
        total = 0.0
        local_bytes = 0.0
        for parent_id in parents:
            parent = tenant.workflow.task(parent_id)
            total += parent.output_size
            attempts = tenant.monitor.attempts(parent_id)
            final = next((a for a in reversed(attempts) if a.is_completed), None)
            if final is not None and final.instance_id == instance.instance_id:
                local_bytes += parent.output_size
        if total <= 0.0:
            return 0.0
        return local_bytes / total

    # ------------------------------------------------------------------
    # bookkeeping / trace emission
    # ------------------------------------------------------------------
    def _accrue_busy(
        self, instance_id: str, tenant: TenantRun, scoped: str, now: float
    ) -> None:
        assigned = self._assign_at.pop(scoped, None)
        if assigned is None:
            return
        key = (instance_id, tenant.index)
        self._tenant_busy[key] = self._tenant_busy.get(key, 0.0) + (now - assigned)

    def _record_pool_change(self, now: float) -> None:
        count = self.pool.running_count()
        if self._timeline and self._timeline[-1][0] == now:
            self._timeline[-1] = (now, count)
        else:
            self._timeline.append((now, count))

    def _emit_attempt(
        self, tenant: TenantRun, local: str, scoped: str, outcome: str, now: float
    ) -> None:
        attempt = tenant.monitor.current_attempt(local)
        self.tracer.emit(
            TaskAttemptRecord(
                now=now,
                task_id=scoped,
                stage_id=attempt.stage_id,
                attempt=attempt.attempt,
                instance_id=attempt.instance_id,
                outcome=outcome,
                queue_wait=attempt.queue_wait,
                stage_in=attempt.stage_in_time,
                runtime=attempt.execution_time,
                stage_out=attempt.stage_out_time,
                occupancy=attempt.occupancy_elapsed(now),
                input_size=attempt.input_size,
            )
        )

    def _emit_instance_end(self, instance: Instance, now: float, event: str) -> None:
        units, paid, busy, idle, wasted = self.pool.instance_utilization(
            instance, now
        )
        self.tracer.emit(
            InstanceEventRecord(
                now=now,
                instance_id=instance.instance_id,
                event=event,
                units_charged=units,
                paid_seconds=paid,
                busy_slot_seconds=busy,
                idle_fraction=idle,
                wasted_seconds=wasted,
            )
        )

    def _emit_tick(
        self,
        launched: int,
        terminated: int,
        pool_before: int,
        active: tuple[TenantRun, ...],
    ) -> None:
        branch = "grow" if launched > 0 else ("shrink" if terminated > 0 else "hold")
        extra = self.autoscaler.tick_telemetry()
        detail: dict = {}
        if extra is not None:
            detail = dict(
                target_pool=extra.target_pool,
                q_task=extra.q_task,
                q_remaining=extra.q_remaining,
            )
        self.tracer.emit(
            FleetTickRecord(
                tick=self._ticks - 1,
                now=self._now,
                active_tenants=len(active),
                waiting_tenants=len(self._waiting),
                queued_tasks=sum(len(t.scheduler) for t in active),
                pool_before=pool_before,
                pool_after=self.pool.active_size() - len(self._draining),
                launched=launched,
                terminated=terminated,
                branch=branch,
                **detail,
            )
        )
