"""Aggregate result of a fleet run."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.fleet.tenant import TenantResult

__all__ = ["FleetResult"]


@dataclass(frozen=True)
class FleetResult:
    """Everything a fleet simulation produced.

    ``to_summary_json`` is the canonical byte-deterministic rendering
    used by the CLI ``--summary-json`` flag and the CI determinism
    check; it deliberately excludes ``controller_cpu_seconds`` (a
    wall-clock measurement) so identical seeds yield identical bytes.
    """

    autoscaler_name: str
    allocation_policy: str
    charging_unit: float
    seed: int
    n_tenants: int
    makespan: float
    completed: bool
    total_units: float
    total_cost: float
    wasted_seconds: float
    #: cost of instances that never ran any task — billed to the fleet
    #: operator, not to a tenant (no busy share to key attribution on)
    unattributed_cost: float
    utilization: float
    peak_instances: int
    instances_launched: int
    restarts: int
    ticks: int
    events_processed: int
    cloud_faults: int
    tenants: tuple[TenantResult, ...]
    controller_cpu_seconds: float = field(default=0.0, compare=False)

    @property
    def mean_slowdown(self) -> float:
        if not self.tenants:
            return 0.0
        return sum(t.slowdown for t in self.tenants) / len(self.tenants)

    @property
    def mean_queue_wait(self) -> float:
        if not self.tenants:
            return 0.0
        return sum(t.queue_wait_mean for t in self.tenants) / len(self.tenants)

    def to_summary_json(self) -> str:
        """Deterministic JSON summary (same seed ⇒ identical bytes)."""
        payload = asdict(self)
        del payload["controller_cpu_seconds"]
        payload["mean_slowdown"] = self.mean_slowdown
        payload["mean_queue_wait"] = self.mean_queue_wait
        return json.dumps(payload, sort_keys=True, indent=2)
