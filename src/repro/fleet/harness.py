"""Convenience entry point tying the fleet pieces together.

:func:`run_fleet` is what the CLI, the experiments layer, and the tests
call: it resolves workload names, builds the arrival process, and runs a
:class:`~repro.fleet.engine.FleetSimulation` with the paper's default
models (the same defaults the single-workflow harness uses).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.cloud.faults import ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.fleet.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.fleet.autoscalers import FleetAutoscaler, fleet_autoscaler
from repro.fleet.engine import FleetSimulation
from repro.fleet.policies import AllocationPolicy, allocation_policy
from repro.fleet.result import FleetResult
from repro.telemetry.sinks import JsonlSink
from repro.telemetry.tracer import Tracer
from repro.workloads import montage, table1_specs

__all__ = [
    "DEFAULT_FLEET_WORKLOADS",
    "fleet_workload_catalog",
    "make_arrivals",
    "run_fleet",
]

#: default workload mix for CLI/experiment fleet runs: two small Table I
#: profiles with very different shapes (deep staged scan vs. wide
#: iterative), cycled round-robin over arrivals
DEFAULT_FLEET_WORKLOADS: tuple[str, ...] = ("tpch6-S", "pagerank-S")


def fleet_workload_catalog() -> dict[str, object]:
    """Every workload name a fleet submission may reference.

    Table I profiles resolve to their spec (realized per-tenant with the
    submission's workflow seed); montage resolves to a seed-taking
    callable for the same reason.
    """
    catalog: dict[str, object] = dict(table1_specs())
    catalog["montage-S"] = lambda seed: montage("S", seed=seed)
    catalog["montage-L"] = lambda seed: montage("L", seed=seed)
    return catalog


def make_arrivals(
    arrival: str,
    *,
    rate: float = 4.0,
    n: int = 4,
    burst_size: int = 2,
    gap: float = 1800.0,
    times: Sequence[float] | None = None,
    workloads: Sequence[str] = DEFAULT_FLEET_WORKLOADS,
) -> ArrivalProcess:
    """Build an arrival process from CLI-style parameters."""
    if arrival == "poisson":
        return PoissonArrivals(rate, n, workloads)
    if arrival == "bursty":
        n_bursts = max(1, -(-n // burst_size))  # ceil(n / burst_size)
        return BurstyArrivals(burst_size, n_bursts, gap, workloads)
    if arrival == "trace":
        if not times:
            raise ValueError("trace arrivals need explicit --times")
        return TraceArrivals(times, workloads)
    raise ValueError(
        f"unknown arrival process {arrival!r} (options: bursty, poisson, trace)"
    )


def run_fleet(
    *,
    arrivals: ArrivalProcess,
    policy: AllocationPolicy | str = "fair-share",
    autoscaler: FleetAutoscaler | str = "global-wire",
    charging_unit: float = 900.0,
    seed: int = 0,
    site: CloudSite | None = None,
    workload_catalog: Mapping[str, object] | None = None,
    transfer_model=None,
    runtime_model=None,
    fault_model=None,
    max_time: float = 1e8,
    max_active: int | None = None,
    trace_path: str | Path | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> FleetResult:
    """Run one fleet simulation end to end and return its result.

    ``validate`` is forwarded to :class:`FleetSimulation` — ``True`` for
    a default raise-mode invariant checker, or a configured
    :class:`~repro.validate.InvariantChecker` instance.
    """
    if isinstance(policy, str):
        policy = allocation_policy(policy)
    if isinstance(autoscaler, str):
        autoscaler = fleet_autoscaler(autoscaler)
    site = site if site is not None else exogeni_site()
    catalog = (
        dict(workload_catalog)
        if workload_catalog is not None
        else fleet_workload_catalog()
    )
    submissions = arrivals.generate(seed)

    sink = JsonlSink(trace_path) if trace_path is not None else None
    tracer = Tracer(sink) if sink is not None else None
    try:
        sim = FleetSimulation(
            submissions,
            catalog,
            site,
            autoscaler,
            policy,
            charging_unit,
            transfer_model=transfer_model,
            runtime_model=runtime_model,
            fault_model=fault_model,
            seed=seed,
            max_time=max_time,
            max_active=max_active,
            tracer=tracer,
            chaos=chaos,
            validate=validate,
        )
        return sim.run()
    finally:
        if sink is not None:
            sink.close()
