"""Convenience entry point tying the fleet pieces together.

:func:`run_fleet` is what the CLI, the experiments layer, and the tests
call: it resolves workload names, builds the arrival process, and runs a
:class:`~repro.fleet.engine.FleetSimulation` with the paper's default
models (the same defaults the single-workflow harness uses).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.cloud.faults import ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.fleet.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.fleet.autoscalers import FleetAutoscaler, fleet_autoscaler
from repro.fleet.engine import FleetSimulation
from repro.fleet.policies import AllocationPolicy, allocation_policy
from repro.fleet.result import FleetResult
from repro.telemetry.sinks import JsonlSink
from repro.telemetry.tracer import Tracer

__all__ = [
    "DEFAULT_FLEET_WORKLOADS",
    "fleet_workload_catalog",
    "make_arrivals",
    "resume_fleet",
    "run_fleet",
]

#: default workload mix for CLI/experiment fleet runs: two small Table I
#: profiles with very different shapes (deep staged scan vs. wide
#: iterative), cycled round-robin over arrivals
DEFAULT_FLEET_WORKLOADS: tuple[str, ...] = ("tpch6-S", "pagerank-S")


def fleet_workload_catalog() -> dict[str, object]:
    """Every workload name a fleet submission may reference.

    Delegates to the central registry (:mod:`repro.zoo.registry`): Table
    I profiles resolve to their spec (realized per-tenant with the
    submission's workflow seed), montage to a seed-taking generator
    adapter, and ``zoo/<instance>`` names to lazily-calibrated specs.
    All entries are picklable, so the catalog crosses sweep-worker
    process boundaries.
    """
    from repro.zoo.registry import workload_catalog

    return workload_catalog()


def make_arrivals(
    arrival: str,
    *,
    rate: float = 4.0,
    n: int = 4,
    burst_size: int = 2,
    gap: float = 1800.0,
    times: Sequence[float] | None = None,
    workloads: Sequence[str] = DEFAULT_FLEET_WORKLOADS,
) -> ArrivalProcess:
    """Build an arrival process from CLI-style parameters."""
    if arrival == "poisson":
        return PoissonArrivals(rate, n, workloads)
    if arrival == "bursty":
        n_bursts = max(1, -(-n // burst_size))  # ceil(n / burst_size)
        return BurstyArrivals(burst_size, n_bursts, gap, workloads)
    if arrival == "trace":
        if not times:
            raise ValueError("trace arrivals need explicit --times")
        return TraceArrivals(times, workloads)
    raise ValueError(
        f"unknown arrival process {arrival!r} (options: bursty, poisson, trace)"
    )


def run_fleet(
    *,
    arrivals: ArrivalProcess,
    policy: AllocationPolicy | str = "fair-share",
    autoscaler: FleetAutoscaler | str = "global-wire",
    charging_unit: float = 900.0,
    seed: int = 0,
    site: CloudSite | None = None,
    workload_catalog: Mapping[str, object] | None = None,
    transfer_model=None,
    runtime_model=None,
    fault_model=None,
    max_time: float = 1e8,
    max_active: int | None = None,
    trace_path: str | Path | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
    shards: int = 1,
    checkpoint_every: int | None = None,
    checkpoint_path: str | Path | None = None,
    stop_after_checkpoint: bool = False,
) -> FleetResult | None:
    """Run one fleet simulation end to end and return its result.

    ``validate`` is forwarded to :class:`FleetSimulation` — ``True`` for
    a default raise-mode invariant checker, or a configured
    :class:`~repro.validate.InvariantChecker` instance. ``shards``
    partitions the event queue (any value is bit-identical to 1).
    ``checkpoint_every``/``checkpoint_path`` serialize the engine every
    N controller ticks (:mod:`repro.checkpoint`); with
    ``stop_after_checkpoint`` the run returns ``None`` right after the
    first checkpoint — resume it with :func:`resume_fleet`.
    """
    if isinstance(policy, str):
        policy = allocation_policy(policy)
    if isinstance(autoscaler, str):
        autoscaler = fleet_autoscaler(autoscaler)
    site = site if site is not None else exogeni_site()
    catalog = (
        dict(workload_catalog)
        if workload_catalog is not None
        else fleet_workload_catalog()
    )
    submissions = arrivals.generate(seed)

    sink = JsonlSink(trace_path) if trace_path is not None else None
    tracer = Tracer(sink) if sink is not None else None
    try:
        sim = FleetSimulation(
            submissions,
            catalog,
            site,
            autoscaler,
            policy,
            charging_unit,
            transfer_model=transfer_model,
            runtime_model=runtime_model,
            fault_model=fault_model,
            seed=seed,
            max_time=max_time,
            max_active=max_active,
            tracer=tracer,
            chaos=chaos,
            validate=validate,
            shards=shards,
        )
        return sim.run(
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            stop_after_checkpoint=stop_after_checkpoint,
        )
    finally:
        if sink is not None:
            sink.close()


def resume_fleet(
    checkpoint: str | Path,
    *,
    checkpoint_every: int | None = None,
    checkpoint_path: str | Path | None = None,
    stop_after_checkpoint: bool = False,
) -> FleetResult | None:
    """Restore a checkpointed fleet run and drive it to completion.

    The checkpoint carries the whole engine — configuration, event
    queue(s), RNG streams, predictor state, invariant checker, telemetry
    cursor — so no other parameters are needed; the completed run is
    byte-identical to one that was never interrupted. Pass
    ``checkpoint_every``/``checkpoint_path`` to keep checkpointing the
    resumed run (defaults to not writing further checkpoints).
    """
    from repro.checkpoint import CheckpointError, load_checkpoint

    sim = load_checkpoint(checkpoint)
    if not isinstance(sim, FleetSimulation):
        raise CheckpointError(
            f"{checkpoint} holds a {type(sim).__name__}, not a fleet run"
        )
    try:
        return sim.run(
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            stop_after_checkpoint=stop_after_checkpoint,
        )
    finally:
        sim.tracer.close()
