"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that is derived from a user-supplied seed and
a string *label*. Deriving child generators by label (rather than sharing a
single generator or splitting sequentially) keeps runs reproducible even when
the order of component construction changes: the Epigenomics runtime sampler
always sees the same stream for a given ``(seed, label)`` no matter what else
consumed randomness first.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngStream", "derive_seed", "spawn_rng"]


def derive_seed(seed: int, label: str) -> int:
    """Derive a 63-bit child seed from ``seed`` and a string ``label``.

    The derivation hashes the pair with SHA-256 so that nearby parent seeds
    (0, 1, 2, ...) produce unrelated child streams, and so the mapping is
    stable across Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def spawn_rng(seed: int, label: str) -> np.random.Generator:
    """Create an independent generator for ``(seed, label)``."""
    return np.random.default_rng(derive_seed(seed, label))


@dataclass
class RngStream:
    """A labelled tree of reproducible random generators.

    A component holds one :class:`RngStream` and calls :meth:`child` to hand
    independent sub-streams to its own sub-components, or :meth:`generator`
    to draw numbers itself.

    Example
    -------
    >>> root = RngStream(seed=7)
    >>> a = root.child("workload").generator()
    >>> b = root.child("transfer").generator()
    >>> float(a.random()) != float(b.random())
    True
    """

    seed: int
    label: str = "root"
    _generator: np.random.Generator | None = field(
        default=None, repr=False, compare=False
    )

    def child(self, label: str) -> "RngStream":
        """Return an independent child stream labelled ``label``."""
        return RngStream(seed=derive_seed(self.seed, label), label=label)

    def generator(self) -> np.random.Generator:
        """Return (and cache) this stream's generator."""
        if self._generator is None:
            self._generator = np.random.default_rng(self.seed)
        return self._generator

    def fork(self) -> np.random.Generator:
        """Return a fresh generator with this stream's seed.

        Unlike :meth:`generator`, consecutive calls return generators that
        restart the stream, which is useful for replaying an identical
        sequence of draws.
        """
        return np.random.default_rng(self.seed)
