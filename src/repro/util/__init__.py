"""Shared utilities: seeded randomness, validation, and text formatting.

These helpers are deliberately dependency-light; every other subpackage may
import from here, but :mod:`repro.util` imports nothing from the rest of the
library.
"""

from repro.util.rng import RngStream, derive_seed, spawn_rng
from repro.util.validation import (
    ValidationError,
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)
from repro.util.formatting import format_duration, render_table

__all__ = [
    "RngStream",
    "ValidationError",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
    "derive_seed",
    "format_duration",
    "render_table",
    "spawn_rng",
]
