"""Plain-text rendering helpers for experiment reports.

The experiment harness (:mod:`repro.experiments`) prints the same rows the
paper's tables and figures report. Rendering is deliberately plain
monospaced text so benchmark output is readable in a terminal and diffs
cleanly in CI logs.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_duration", "render_table"]


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as a compact human-readable string.

    >>> format_duration(42.0)
    '42.0s'
    >>> format_duration(3900)
    '1h05m'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 120:
        return f"{seconds:.1f}s"
    minutes = seconds / 60.0
    if minutes < 120:
        return f"{int(minutes)}m{int(round(seconds - int(minutes) * 60)):02d}s"
    hours = int(seconds // 3600)
    rem_min = int(round((seconds - hours * 3600) / 60.0))
    if rem_min == 60:  # rounding pushed us over the hour boundary
        hours, rem_min = hours + 1, 0
    return f"{hours}h{rem_min:02d}m"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospaced table.

    Floats are formatted with three decimals; all other values via ``str``.
    Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
