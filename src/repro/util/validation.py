"""Small argument-validation helpers with uniform error messages.

Simulation configuration errors (a negative lag, a zero-slot instance type)
surface far from their cause if left unchecked, so constructors validate
eagerly through these helpers and raise :class:`ValidationError` with the
offending name and value.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "ValidationError",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
]


class ValidationError(ValueError):
    """Raised when a configuration or argument value is invalid."""


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where a numeric type is expected, because
    ``isinstance(True, int)`` holds and silently-accepted booleans are a
    common source of confusing configs.
    """
    if isinstance(value, bool) and expected in (int, float, (int, float)):
        raise ValidationError(f"{name} must be {expected}, got bool {value!r}")
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be an instance of {expected}, got {type(value).__name__}"
        )


def check_finite(name: str, value: float) -> None:
    """Raise unless ``value`` is a finite real number."""
    check_type(name, value, (int, float))
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is finite and strictly positive."""
    check_finite(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise unless ``value`` is finite and >= 0."""
    check_finite(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Raise unless ``low <= value <= high`` (or strict, if not inclusive)."""
    check_finite(name, value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")
