"""Versioned mid-flight serialization of a running simulation.

Long fleet runs — overnight robustness grids, 10k-tenant diurnal
workloads — need to survive interruption without sacrificing the repo's
core contract: a resumed run must finish **byte-identical** to an
uninterrupted one. This module provides that as a thin, format-stable
layer over the engines:

- :func:`save_checkpoint` serializes a :class:`~repro.fleet.engine.
  FleetSimulation` or :class:`~repro.engine.simulator.Simulation` —
  event queue(s) with their shared sequence counter, pool and billing
  state, per-tenant predictor/OGD state, chaos and launch RNG streams,
  the attached invariant checker, and the telemetry cursor — into a
  single file with a magic tag, a format version, a JSON header, and a
  SHA-256 over the payload.
- :func:`load_checkpoint` verifies magic/version/checksum and returns
  the live simulation object; calling ``run()`` on it continues from
  the cut.
- :func:`read_checkpoint_info` reads only the header (cheap inspection
  for CLIs and tests).

Checkpoints are only ever written at controller-tick boundaries — the
MAPE epoch barrier, where every shard of a sharded fleet is drained to
the same instant — so a cut never lands mid-event.

Why whole-object pickling is safe here
--------------------------------------
Every piece of engine state is plain Python/NumPy data drawing from
labelled RNG sub-streams; ``pickle`` preserves the object graph
including shared references (the tenants' ``_owner`` entries, the
shards' shared ``itertools.count``). The two non-trivial cases:

- **open trace files** — :class:`~repro.telemetry.sinks.JsonlSink`
  detaches its handle on pickling and records the flushed byte offset;
  on the first emit after restore it truncates the file back to that
  offset and appends, so the resumed trace is byte-identical to a
  straight-through one.
- **``id()``-keyed predictor memos** — the controller's caches key on
  ``id(monitor)`` plus version/generation counters. After restore those
  ids change, every lookup misses cleanly, and the values are
  recomputed from state proven equivalent by the PR 6 differential
  suites; identity-collision hits are equally safe because each
  predictor only ever serves its own tenant's monitor.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointInfo",
    "load_checkpoint",
    "read_checkpoint_info",
    "save_checkpoint",
]

#: leading bytes of every checkpoint file
CHECKPOINT_MAGIC = b"WIRECKPT"
#: bumped whenever the on-disk layout or pickled engine schema changes
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or from another version."""


@dataclass(frozen=True)
class CheckpointInfo:
    """The JSON header stored in front of the pickled payload."""

    version: int
    #: "fleet" or "single"
    kind: str
    #: qualified class name of the serialized engine
    engine: str
    #: simulated seconds at the cut
    now: float
    #: controller ticks completed at the cut
    ticks: int
    #: events handled at the cut
    events_processed: int
    #: pickled payload size in bytes
    payload_bytes: int
    #: SHA-256 hex digest of the payload
    sha256: str


def _engine_kind(sim: Any) -> str:
    return "fleet" if hasattr(sim, "tenants") else "single"


def save_checkpoint(sim: Any, path: str | Path) -> CheckpointInfo:
    """Serialize ``sim`` to ``path`` and return the header written.

    The file is written to a temporary sibling and atomically renamed,
    so an interrupted save never leaves a truncated checkpoint behind.
    """
    payload = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
    info = CheckpointInfo(
        version=CHECKPOINT_VERSION,
        kind=_engine_kind(sim),
        engine=type(sim).__qualname__,
        now=float(sim._now),
        ticks=int(getattr(sim, "_ticks", 0)),
        events_processed=int(sim._events_processed),
        payload_bytes=len(payload),
        sha256=hashlib.sha256(payload).hexdigest(),
    )
    header = json.dumps(asdict(info), sort_keys=True).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(CHECKPOINT_MAGIC)
        handle.write(len(header).to_bytes(4, "big"))
        handle.write(header)
        handle.write(payload)
    tmp.replace(path)
    return info


def _read(path: str | Path, *, with_payload: bool) -> tuple[CheckpointInfo, bytes]:
    path = Path(path)
    try:
        handle = path.open("rb")
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint file not found: {path}") from None
    with handle:
        magic = handle.read(len(CHECKPOINT_MAGIC))
        if magic != CHECKPOINT_MAGIC:
            raise CheckpointError(
                f"{path}: not a checkpoint file (bad magic {magic!r})"
            )
        raw_len = handle.read(4)
        if len(raw_len) != 4:
            raise CheckpointError(f"{path}: truncated checkpoint header")
        header_len = int.from_bytes(raw_len, "big")
        raw_header = handle.read(header_len)
        if len(raw_header) != header_len:
            raise CheckpointError(f"{path}: truncated checkpoint header")
        try:
            info = CheckpointInfo(**json.loads(raw_header.decode("utf-8")))
        except (json.JSONDecodeError, TypeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"{path}: malformed checkpoint header: {exc}"
            ) from exc
        if info.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: checkpoint version {info.version} is not "
                f"supported (this build reads version {CHECKPOINT_VERSION})"
            )
        if not with_payload:
            return info, b""
        payload = handle.read()
    if len(payload) != info.payload_bytes:
        raise CheckpointError(
            f"{path}: truncated payload ({len(payload)} of "
            f"{info.payload_bytes} bytes)"
        )
    if hashlib.sha256(payload).hexdigest() != info.sha256:
        raise CheckpointError(f"{path}: payload checksum mismatch")
    return info, payload


def read_checkpoint_info(path: str | Path) -> CheckpointInfo:
    """Read and validate only the header of a checkpoint file."""
    info, _ = _read(path, with_payload=False)
    return info


def load_checkpoint(path: str | Path) -> Any:
    """Deserialize a checkpoint back into a runnable simulation."""
    _, payload = _read(path, with_payload=True)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"{path}: cannot unpickle payload: {exc}") from exc
