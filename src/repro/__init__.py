"""repro — a reproduction of WIRE (CLUSTER 2021).

WIRE manages cloud resources for DAG-based workflows through a MAPE loop:
it learns task performance online, simulates the workflow ahead of
execution to predict upcoming load, and steers an elastic worker-instance
pool for maximal parallelism at bounded cost.

Public API highlights
---------------------
- :mod:`repro.dag` — tasks, stages, validated workflow DAGs
- :mod:`repro.cloud` — simulated IaaS substrate (instances, billing, lag)
- :mod:`repro.engine` — discrete-event workflow execution engine
- :mod:`repro.core` — the WIRE controller (predictor, lookahead, steering)
- :mod:`repro.autoscalers` — WIRE plus the paper's baseline policies
- :mod:`repro.workloads` — Table I workload generators
- :mod:`repro.experiments` — regenerates every table and figure of §IV
"""

__version__ = "1.0.0"
