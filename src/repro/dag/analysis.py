"""Structural analysis of workflow DAGs.

The paper motivates WIRE with the observation that "the available
parallelism (width) of a workflow may vary dramatically as it runs" (§I).
These helpers quantify that: level widths, critical-path length, and an
ideal parallelism profile used by tests and by the oracle baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.workflow import Workflow

__all__ = [
    "ParallelismProfile",
    "critical_path_length",
    "critical_path_tasks",
    "depth",
    "ideal_parallelism_profile",
    "level_widths",
    "max_width",
]


def _levels(workflow: Workflow) -> dict[str, int]:
    """Longest-path depth (in edges) of every task from the roots."""
    level: dict[str, int] = {}
    for tid in workflow.topological_order():
        parents = workflow.parents(tid)
        level[tid] = 0 if not parents else 1 + max(level[p] for p in parents)
    return level


def depth(workflow: Workflow) -> int:
    """Number of levels on the longest root-to-leaf path (>= 1)."""
    return max(_levels(workflow).values()) + 1


def level_widths(workflow: Workflow) -> list[int]:
    """Task count at each longest-path level, index 0 = roots."""
    levels = _levels(workflow)
    widths = [0] * (max(levels.values()) + 1)
    for lvl in levels.values():
        widths[lvl] += 1
    return widths


def max_width(workflow: Workflow) -> int:
    """Largest level width — an upper bound on useful parallelism."""
    return max(level_widths(workflow))


def critical_path_length(workflow: Workflow) -> float:
    """Length (seconds of nominal runtime) of the heaviest dependency path.

    This is the workflow's minimum possible makespan with unlimited
    instances and free, instantaneous data transfers.
    """
    finish: dict[str, float] = {}
    for tid in workflow.topological_order():
        task = workflow.task(tid)
        start = max(
            (finish[p] for p in workflow.parents(tid)), default=0.0
        )
        finish[tid] = start + task.runtime
    return max(finish.values())


def critical_path_tasks(workflow: Workflow) -> list[str]:
    """Task ids along one heaviest path, root to leaf."""
    finish: dict[str, float] = {}
    best_parent: dict[str, str | None] = {}
    for tid in workflow.topological_order():
        task = workflow.task(tid)
        parent, start = None, 0.0
        for p in sorted(workflow.parents(tid)):
            if finish[p] > start:
                parent, start = p, finish[p]
        finish[tid] = start + task.runtime
        best_parent[tid] = parent
    end = max(finish, key=lambda t: (finish[t], t))
    path: list[str] = []
    cursor: str | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = best_parent[cursor]
    path.reverse()
    return path


@dataclass(frozen=True)
class ParallelismProfile:
    """Step function of runnable parallelism over idealized time.

    ``times[i]`` is the start of a segment during which ``widths[i]`` tasks
    run concurrently, under the idealization of unlimited instances and
    zero transfer cost (every task starts the moment its parents finish).
    """

    times: tuple[float, ...]
    widths: tuple[int, ...]

    def width_at(self, t: float) -> int:
        """Concurrent task count at idealized time ``t``."""
        width = 0
        for start, w in zip(self.times, self.widths):
            if start <= t:
                width = w
            else:
                break
        return width

    @property
    def peak(self) -> int:
        """Maximum concurrent task count."""
        return max(self.widths, default=0)


def ideal_parallelism_profile(workflow: Workflow) -> ParallelismProfile:
    """Compute the unlimited-resources parallelism profile.

    Every task starts as soon as all parents complete; the profile counts
    tasks running at each instant. Used by tests (sanity bounds on engine
    makespans) and the oracle autoscaler.
    """
    start: dict[str, float] = {}
    finish: dict[str, float] = {}
    for tid in workflow.topological_order():
        task = workflow.task(tid)
        s = max((finish[p] for p in workflow.parents(tid)), default=0.0)
        start[tid] = s
        finish[tid] = s + task.runtime
    # Sweep events: +1 at start, -1 at finish. Zero-runtime tasks still
    # register a start/finish pair at the same instant; process finishes
    # first at equal times so they never inflate the width.
    events: list[tuple[float, int]] = []
    for tid in workflow.tasks:
        events.append((start[tid], 1))
        events.append((finish[tid], -1))
    events.sort(key=lambda e: (e[0], e[1]))
    times: list[float] = []
    widths: list[int] = []
    width = 0
    i = 0
    while i < len(events):
        t = events[i][0]
        while i < len(events) and events[i][0] == t:
            width += events[i][1]
            i += 1
        times.append(t)
        widths.append(width)
    return ParallelismProfile(times=tuple(times), widths=tuple(widths))
