"""Workflow DAG: tasks, dependency edges, stage inference.

A :class:`Workflow` is an immutable, validated DAG of
:class:`~repro.dag.task.Task` objects with data-flow dependency edges. It is
the static structure WIRE's lookahead simulator walks (paper §II-C property
2: "the load flows of a run are predictable").
"""

from __future__ import annotations

from collections import deque
from functools import cached_property
from typing import Iterable, Iterator, Mapping

from repro.dag.stage import Stage
from repro.dag.task import Task

__all__ = ["CycleError", "Workflow"]


class CycleError(ValueError):
    """Raised when the declared dependencies contain a cycle."""


class Workflow:
    """An immutable task DAG.

    Parameters
    ----------
    name:
        Human-readable workflow name (e.g. ``"epigenomics-S"``).
    tasks:
        The tasks of the workflow. Task ids must be unique.
    edges:
        ``(parent_id, child_id)`` dependency pairs: the child may start only
        after the parent completes. Duplicate edges are coalesced;
        self-edges and edges naming unknown tasks are rejected.

    Raises
    ------
    CycleError
        If the dependency graph is cyclic.
    ValueError
        On duplicate task ids, unknown endpoints, or self-edges.
    """

    def __init__(
        self,
        name: str,
        tasks: Iterable[Task],
        edges: Iterable[tuple[str, str]] = (),
    ) -> None:
        if not name:
            raise ValueError("workflow name must be non-empty")
        self.name = name
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self._tasks:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            self._tasks[task.task_id] = task
        if not self._tasks:
            raise ValueError("workflow must contain at least one task")

        self._parents: dict[str, set[str]] = {tid: set() for tid in self._tasks}
        self._children: dict[str, set[str]] = {tid: set() for tid in self._tasks}
        for parent, child in edges:
            if parent not in self._tasks:
                raise ValueError(f"edge parent {parent!r} is not a task")
            if child not in self._tasks:
                raise ValueError(f"edge child {child!r} is not a task")
            if parent == child:
                raise ValueError(f"self-edge on task {parent!r}")
            self._parents[child].add(parent)
            self._children[parent].add(child)

        self._topological = self._compute_topological_order()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Mapping[str, Task]:
        """Mapping of task id to :class:`Task`."""
        return dict(self._tasks)

    def task(self, task_id: str) -> Task:
        """Return the task with ``task_id``."""
        return self._tasks[task_id]

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[Task]:
        """Iterate tasks in topological order."""
        return (self._tasks[tid] for tid in self._topological)

    def parents(self, task_id: str) -> frozenset[str]:
        """Ids of the tasks that must complete before ``task_id`` starts."""
        return frozenset(self._parents[task_id])

    def children(self, task_id: str) -> frozenset[str]:
        """Ids of the tasks that depend on ``task_id``."""
        return frozenset(self._children[task_id])

    @cached_property
    def children_tuples(self) -> dict[str, tuple[str, ...]]:
        """Per-task children as tuples, in :meth:`children`'s iteration order.

        Built once and shared by every per-tick consumer (the predictor's
        completion-delta walk visits the children of thousands of tasks),
        avoiding a fresh frozenset copy per call. The tuple order matches
        what iterating :meth:`children` yields, so swapping a call site to
        this map cannot reorder any downstream traversal.
        """
        return {tid: tuple(frozenset(cs)) for tid, cs in self._children.items()}

    @cached_property
    def sorted_children(self) -> dict[str, tuple[str, ...]]:
        """Per-task children as sorted tuples (deterministic traversal).

        The lookahead simulator enqueues newly-ready children in sorted
        order; sharing one prebuilt map keeps that sort out of the
        per-projection hot path.
        """
        return {tid: tuple(sorted(cs)) for tid, cs in self._children.items()}

    @cached_property
    def parent_counts(self) -> dict[str, int]:
        """Per-task total parent count, shared by the tracking rebuilds."""
        return {tid: len(ps) for tid, ps in self._parents.items()}

    @cached_property
    def roots(self) -> tuple[str, ...]:
        """Task ids with no parents, in topological order."""
        return tuple(t for t in self._topological if not self._parents[t])

    @cached_property
    def leaves(self) -> tuple[str, ...]:
        """Task ids with no children, in topological order."""
        return tuple(t for t in self._topological if not self._children[t])

    def topological_order(self) -> tuple[str, ...]:
        """All task ids in a deterministic topological order.

        Ties are broken by task id so the order is stable across runs.
        """
        return self._topological

    def _compute_topological_order(self) -> tuple[str, ...]:
        in_degree = {tid: len(ps) for tid, ps in self._parents.items()}
        # Deterministic Kahn's algorithm: the frontier is kept sorted.
        frontier = sorted(tid for tid, deg in in_degree.items() if deg == 0)
        queue = deque(frontier)
        order: list[str] = []
        while queue:
            tid = queue.popleft()
            order.append(tid)
            ready: list[str] = []
            for child in self._children[tid]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
            for child in sorted(ready):
                queue.append(child)
        if len(order) != len(self._tasks):
            unresolved = sorted(tid for tid, deg in in_degree.items() if deg > 0)
            raise CycleError(
                f"workflow {self.name!r} has a dependency cycle involving "
                f"{unresolved[:5]}"
            )
        return tuple(order)

    # ------------------------------------------------------------------
    # stage inference
    # ------------------------------------------------------------------
    @cached_property
    def stages(self) -> tuple[Stage, ...]:
        """Infer stages: groups with equal executable and predecessor stages.

        Following the paper's definition (§I), a task's stage is determined
        by its executable plus the *stages* (not individual tasks) of its
        parents, computed in topological order. Stage ids are
        ``"<executable>#<k>"`` with ``k`` disambiguating same-executable
        groups with different predecessors, numbered in topological order of
        first appearance.
        """
        task_stage: dict[str, str] = {}
        key_to_stage: dict[tuple[str, frozenset[str]], str] = {}
        members: dict[str, list[str]] = {}
        preds: dict[str, frozenset[str]] = {}
        exe_counter: dict[str, int] = {}

        for tid in self._topological:
            task = self._tasks[tid]
            parent_stages = frozenset(task_stage[p] for p in self._parents[tid])
            key = (task.executable, parent_stages)
            stage_id = key_to_stage.get(key)
            if stage_id is None:
                index = exe_counter.get(task.executable, 0)
                exe_counter[task.executable] = index + 1
                stage_id = f"{task.executable}#{index}"
                key_to_stage[key] = stage_id
                members[stage_id] = []
                preds[stage_id] = parent_stages
            task_stage[tid] = stage_id
            members[stage_id].append(tid)

        return tuple(
            Stage(
                stage_id=sid,
                executable=sid.rsplit("#", 1)[0],
                task_ids=tuple(members[sid]),
                predecessor_stage_ids=preds[sid],
            )
            for sid in members
        )

    @cached_property
    def stage_of(self) -> Mapping[str, str]:
        """Mapping of task id to its inferred stage id."""
        mapping: dict[str, str] = {}
        for stage in self.stages:
            for tid in stage.task_ids:
                mapping[tid] = stage.stage_id
        return mapping

    def stage(self, stage_id: str) -> Stage:
        """Return the stage with ``stage_id``."""
        for stage in self.stages:
            if stage.stage_id == stage_id:
                return stage
        raise KeyError(stage_id)

    # ------------------------------------------------------------------
    # aggregate properties
    # ------------------------------------------------------------------
    @cached_property
    def total_work(self) -> float:
        """Sum of all task nominal runtimes, in seconds.

        Corresponds to Table I's "aggregate task execution time".
        """
        return float(sum(t.runtime for t in self._tasks.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workflow({self.name!r}, tasks={len(self._tasks)}, "
            f"stages={len(self.stages)})"
        )
