"""Stage model.

The paper (§I) defines a *stage* as a group of tasks that share the same
executable and the same dependent predecessor tasks. WIRE's task predictor
operates per stage because peer tasks within a stage are comparable
(§II-C property 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Stage"]


@dataclass(frozen=True)
class Stage:
    """A group of comparable tasks within a workflow.

    Stages are derived by :meth:`repro.dag.workflow.Workflow.stages` — two
    tasks belong to the same stage when they run the same executable and
    their parent tasks belong to the same set of stages.
    """

    stage_id: str
    executable: str
    task_ids: tuple[str, ...]
    predecessor_stage_ids: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.task_ids:
            raise ValueError(f"stage {self.stage_id!r} has no tasks")
        if len(set(self.task_ids)) != len(self.task_ids):
            raise ValueError(f"stage {self.stage_id!r} has duplicate task ids")

    @property
    def size(self) -> int:
        """Number of tasks in the stage."""
        return len(self.task_ids)
