"""Static task model.

A :class:`Task` is the unit of computation and resource consumption (paper
§I): it occupies one slot of a worker instance for its data stage-in, its
execution, and its data stage-out. Tasks here are *static* descriptions —
what a workflow declares before it runs. Runtime state (start times,
measured durations) lives in the execution engine
(:mod:`repro.engine.master`) and in WIRE's run state
(:mod:`repro.core.runstate`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """One schedulable task of a workflow.

    Parameters
    ----------
    task_id:
        Unique identifier within the workflow.
    executable:
        Name of the program the task runs. Tasks sharing an executable and
        the same set of predecessor stages form a *stage* (paper §I); stage
        inference uses this field.
    runtime:
        The task's nominal execution time in seconds for this run — the
        ground truth the execution engine realizes (optionally perturbed by
        per-run variability models). WIRE never reads this field directly;
        it only sees measured durations through monitoring.
    input_size:
        Total input bytes the task stages in. This is the feature of the
        online-gradient-descent predictor (paper Eq. 1).
    output_size:
        Total output bytes the task stages out.
    """

    task_id: str
    executable: str
    runtime: float
    input_size: float = 0.0
    output_size: float = 0.0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be a non-empty string")
        if not self.executable:
            raise ValueError("executable must be a non-empty string")
        check_non_negative("runtime", self.runtime)
        check_non_negative("input_size", self.input_size)
        check_non_negative("output_size", self.output_size)
