"""Workflow DAG substrate: tasks, stages, validated DAGs, and analysis.

This package models what a workflow *declares* before it runs — the static
structure WIRE exploits for load prediction (paper §II-C). Execution
dynamics live in :mod:`repro.engine`.
"""

from repro.dag.analysis import (
    ParallelismProfile,
    critical_path_length,
    critical_path_tasks,
    depth,
    ideal_parallelism_profile,
    level_widths,
    max_width,
)
from repro.dag.builder import WorkflowBuilder
from repro.dag.stage import Stage
from repro.dag.task import Task
from repro.dag.workflow import CycleError, Workflow

__all__ = [
    "CycleError",
    "ParallelismProfile",
    "Stage",
    "Task",
    "Workflow",
    "WorkflowBuilder",
    "critical_path_length",
    "critical_path_tasks",
    "depth",
    "ideal_parallelism_profile",
    "level_widths",
    "max_width",
]
