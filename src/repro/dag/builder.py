"""Fluent construction of workflow DAGs.

:class:`WorkflowBuilder` accumulates tasks and edges, offering convenience
methods for the patterns workload generators need most: fan-out stages,
all-to-all stage barriers, and chains.
"""

from __future__ import annotations

from repro.dag.task import Task
from repro.dag.workflow import Workflow

__all__ = ["WorkflowBuilder"]


class WorkflowBuilder:
    """Incrementally build a :class:`~repro.dag.workflow.Workflow`.

    Example
    -------
    >>> b = WorkflowBuilder("demo")
    >>> _ = b.add_task(Task("split", "split", runtime=5.0))
    >>> maps = b.add_stage("map", count=3, runtime=10.0, parents=["split"])
    >>> _ = b.add_task(Task("merge", "merge", runtime=2.0), parents=maps)
    >>> wf = b.build()
    >>> len(wf), len(wf.stages)
    (5, 3)
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._tasks: list[Task] = []
        self._task_ids: set[str] = set()
        self._edges: list[tuple[str, str]] = []

    def add_task(
        self, task: Task, parents: list[str] | tuple[str, ...] = ()
    ) -> str:
        """Add one task, optionally depending on ``parents``.

        Returns the task id for chaining.
        """
        if task.task_id in self._task_ids:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        for parent in parents:
            if parent not in self._task_ids:
                raise ValueError(f"unknown parent task {parent!r}")
        self._tasks.append(task)
        self._task_ids.add(task.task_id)
        self._edges.extend((parent, task.task_id) for parent in parents)
        return task.task_id

    def add_edge(self, parent: str, child: str) -> None:
        """Add a dependency edge between two existing tasks."""
        for endpoint in (parent, child):
            if endpoint not in self._task_ids:
                raise ValueError(f"unknown task {endpoint!r}")
        self._edges.append((parent, child))

    def add_stage(
        self,
        executable: str,
        count: int,
        runtime: float | list[float],
        *,
        parents: list[str] | tuple[str, ...] = (),
        input_sizes: float | list[float] = 0.0,
        output_sizes: float | list[float] = 0.0,
        prefix: str | None = None,
    ) -> list[str]:
        """Add ``count`` tasks sharing an executable, all-to-all after ``parents``.

        ``runtime``, ``input_sizes`` and ``output_sizes`` may be scalars
        (applied to every task) or per-task lists of length ``count``.
        Returns the new task ids in creation order.
        """
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")

        def per_task(value: float | list[float], what: str) -> list[float]:
            if isinstance(value, (int, float)):
                return [float(value)] * count
            if len(value) != count:
                raise ValueError(
                    f"{what} has {len(value)} entries for {count} tasks"
                )
            return [float(v) for v in value]

        runtimes = per_task(runtime, "runtime")
        inputs = per_task(input_sizes, "input_sizes")
        outputs = per_task(output_sizes, "output_sizes")
        base = prefix if prefix is not None else executable
        ids: list[str] = []
        for i in range(count):
            # Zero-padding keeps lexicographic order == creation order, which
            # makes topological tie-breaking intuitive in tests and traces.
            width = max(4, len(str(count - 1)))
            tid = f"{base}-{i:0{width}d}"
            self.add_task(
                Task(
                    task_id=tid,
                    executable=executable,
                    runtime=runtimes[i],
                    input_size=inputs[i],
                    output_size=outputs[i],
                ),
                parents=parents,
            )
            ids.append(tid)
        return ids

    def build(self) -> Workflow:
        """Validate and return the immutable workflow."""
        return Workflow(self.name, self._tasks, self._edges)
