"""JSON serialization for workflow definitions.

A lightweight sibling of the DAX support (:mod:`repro.dag.dax`): the
native interchange format for this library. Round-trips every field of
the task model exactly (DAX is lossier — it has no executable/id split
for stages, and float formatting is at the mercy of XML tooling).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dag.task import Task
from repro.dag.workflow import Workflow

__all__ = ["workflow_from_json", "workflow_to_json", "load_workflow", "save_workflow"]

_FORMAT_VERSION = 1


def workflow_to_json(workflow: Workflow) -> str:
    """Serialize a workflow definition to a JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": workflow.name,
        "tasks": [
            {
                "id": task.task_id,
                "executable": task.executable,
                "runtime": task.runtime,
                "input_size": task.input_size,
                "output_size": task.output_size,
            }
            for task in workflow  # topological order
        ],
        "edges": [
            [parent, child]
            for child in workflow.topological_order()
            for parent in sorted(workflow.parents(child))
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def workflow_from_json(text: str) -> Workflow:
    """Parse a document produced by :func:`workflow_to_json`."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported workflow format version {version!r}")
    tasks = [
        Task(
            task_id=t["id"],
            executable=t["executable"],
            runtime=float(t["runtime"]),
            input_size=float(t.get("input_size", 0.0)),
            output_size=float(t.get("output_size", 0.0)),
        )
        for t in payload["tasks"]
    ]
    edges = [(parent, child) for parent, child in payload["edges"]]
    return Workflow(payload["name"], tasks, edges)


def save_workflow(workflow: Workflow, path: str | Path) -> None:
    """Write a workflow definition to ``path``."""
    Path(path).write_text(workflow_to_json(workflow), encoding="utf-8")


def load_workflow(path: str | Path) -> Workflow:
    """Read a workflow definition from ``path``."""
    return workflow_from_json(Path(path).read_text(encoding="utf-8"))
