"""Pegasus DAX (Directed Acyclic graph in XML) import/export.

The paper's prototype is built on Pegasus WMS, whose abstract workflows
are exchanged as DAX documents. This module reads and writes the DAX v3.x
subset needed to round-trip this library's workflows, so that

- real Pegasus workflows (e.g. the published Epigenomics DAXes) can be
  loaded and autoscaled by WIRE, and
- workflows generated here can be inspected with standard Pegasus
  tooling.

Supported elements: ``<job>`` with ``id``/``name``/``runtime`` (the
Pegasus profile key ``runtime`` or a ``job``-level attribute), ``<uses>``
file declarations with ``link="input|output"`` and ``size``, and
``<child>/<parent>`` dependency edges. Unknown elements are ignored on
read (real DAXes carry much more).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from xml.dom import minidom

from repro.dag.task import Task
from repro.dag.workflow import CycleError, Workflow

__all__ = ["read_dax", "read_dax_file", "write_dax", "write_dax_file"]

_DAX_NAMESPACE = "http://pegasus.isi.edu/schema/DAX"


def _local(tag: str) -> str:
    """Strip a namespace from an element tag."""
    return tag.rsplit("}", 1)[-1]


def read_dax(text: str, *, default_runtime: float = 1.0) -> Workflow:
    """Parse a DAX document into a :class:`Workflow`.

    Job runtimes come from (in priority order) a ``runtime`` attribute on
    the ``<job>``, or a ``<profile namespace="pegasus" key="runtime">``
    child; jobs without either get ``default_runtime``. Input/output
    sizes are summed over ``<uses>`` declarations carrying ``size``.
    """
    root = ET.fromstring(text)
    if _local(root.tag) != "adag":
        raise ValueError(f"not a DAX document: root element is <{_local(root.tag)}>")
    name = root.get("name") or "dax-workflow"

    tasks: list[Task] = []
    edges: list[tuple[str, str]] = []
    for element in root:
        tag = _local(element.tag)
        if tag == "job":
            tasks.append(_parse_job(element, default_runtime))
        elif tag == "child":
            child_id = element.get("ref")
            if not child_id:
                raise ValueError("<child> element without ref attribute")
            for parent in element:
                if _local(parent.tag) != "parent":
                    continue
                parent_id = parent.get("ref")
                if not parent_id:
                    raise ValueError(
                        f"<parent> element under <child ref={child_id!r}> "
                        "without ref attribute"
                    )
                edges.append((parent_id, child_id))
    _check_edge_refs(name, tasks, edges)
    try:
        return Workflow(name, tasks, edges)
    except CycleError as exc:
        # Re-raise with DAX vocabulary; CycleError already names the
        # first jobs on the unresolvable cycle.
        raise CycleError(f"DAX document {name!r} is not acyclic: {exc}") from None


def _check_edge_refs(
    name: str, tasks: list[Task], edges: list[tuple[str, str]]
) -> None:
    """Reject dangling ``<child>``/``<parent>`` refs, naming the ref.

    Validated here — before :class:`Workflow` construction — so a broken
    DAX fails with the offending XML reference instead of a generic
    graph error (or, worse, partway through topological iteration).
    """
    known = {task.task_id for task in tasks}
    for parent_id, child_id in edges:
        if child_id not in known:
            raise ValueError(
                f"DAX document {name!r}: <child ref={child_id!r}> "
                "references a job that is not declared"
            )
        if parent_id not in known:
            raise ValueError(
                f"DAX document {name!r}: <parent ref={parent_id!r}> under "
                f"<child ref={child_id!r}> references a job that is not "
                "declared"
            )


def _parse_job(element: ET.Element, default_runtime: float) -> Task:
    job_id = element.get("id")
    if not job_id:
        raise ValueError("<job> element without id attribute")
    executable = element.get("name") or job_id

    runtime = element.get("runtime")
    input_size = 0.0
    output_size = 0.0
    for child in element:
        tag = _local(child.tag)
        if tag == "profile" and runtime is None:
            if (
                child.get("namespace") == "pegasus"
                and child.get("key") == "runtime"
            ):
                runtime = (child.text or "").strip()
        elif tag == "uses":
            size = float(child.get("size", 0.0) or 0.0)
            link = child.get("link", "")
            if link == "input":
                input_size += size
            elif link == "output":
                output_size += size
    return Task(
        task_id=job_id,
        executable=executable,
        runtime=float(runtime) if runtime is not None else default_runtime,
        input_size=input_size,
        output_size=output_size,
    )


def read_dax_file(path: str | Path, *, default_runtime: float = 1.0) -> Workflow:
    """Read a DAX document from ``path``."""
    return read_dax(
        Path(path).read_text(encoding="utf-8"), default_runtime=default_runtime
    )


def write_dax(workflow: Workflow) -> str:
    """Serialize ``workflow`` as a DAX v3.6 document.

    Runtimes are written both as a ``runtime`` job attribute (for easy
    round-tripping) and a pegasus profile (for Pegasus tooling); sizes as
    a pair of ``<uses>`` entries per job.
    """
    root = ET.Element(
        "adag",
        {
            "xmlns": _DAX_NAMESPACE,
            "version": "3.6",
            "name": workflow.name,
            "jobCount": str(len(workflow)),
            "childCount": str(
                sum(1 for t in workflow.tasks if workflow.parents(t))
            ),
        },
    )
    for task_id in workflow.topological_order():
        task = workflow.task(task_id)
        job = ET.SubElement(
            root,
            "job",
            {
                "id": task.task_id,
                "name": task.executable,
                "runtime": repr(task.runtime),
            },
        )
        profile = ET.SubElement(
            job, "profile", {"namespace": "pegasus", "key": "runtime"}
        )
        profile.text = repr(task.runtime)
        if task.input_size > 0:
            ET.SubElement(
                job,
                "uses",
                {
                    "file": f"{task.task_id}.in",
                    "link": "input",
                    "size": repr(task.input_size),
                },
            )
        if task.output_size > 0:
            ET.SubElement(
                job,
                "uses",
                {
                    "file": f"{task.task_id}.out",
                    "link": "output",
                    "size": repr(task.output_size),
                },
            )
    for task_id in workflow.topological_order():
        parents = sorted(workflow.parents(task_id))
        if not parents:
            continue
        child = ET.SubElement(root, "child", {"ref": task_id})
        for parent in parents:
            ET.SubElement(child, "parent", {"ref": parent})

    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def write_dax_file(workflow: Workflow, path: str | Path) -> None:
    """Write ``workflow`` to ``path`` as a DAX document."""
    Path(path).write_text(write_dax(workflow), encoding="utf-8")
