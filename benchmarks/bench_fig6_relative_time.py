"""Figure 6: relative execution time across settings and charging units.

Normalizes each (workflow, policy, u) cell's mean makespan to the best
mean across all of the workflow's cells (§IV-E). Expected shape:
full-site defines 1.00x nearly everywhere; wire trades bounded slowdown
for its Figure 5 cost advantage, with its best slowdowns at small u.

Reuses the Figure 5 matrix (same runs, as in the paper).
"""

from __future__ import annotations

from bench_fig5_resource_cost import full_matrix

from repro.experiments import relative_execution_table
from repro.experiments.report import render_relative_time


def test_fig6_relative_time(benchmark, save_report):
    cells = benchmark.pedantic(full_matrix, rounds=1, iterations=1)
    save_report("fig6_relative_time", render_relative_time(cells))

    rows = relative_execution_table(cells)
    wire_rows = [r for r in rows if r[1] == "wire"]
    static_rows = [r for r in rows if r[1] == "full-site"]

    # Full-site is (near-)best everywhere.
    assert all(rel <= 1.05 for _, _, _, rel, _ in static_rows)
    # Wire's slowdown stays within a bounded factor across the matrix
    # (paper: 1.02x-3.57x on its testbed; our faster simulated substrate
    # stretches the worst cells — see EXPERIMENTS.md).
    assert all(rel < 12.0 for _, _, _, rel, _ in wire_rows)
    assert min(rel for _, _, _, rel, _ in wire_rows) < 2.0
