"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation sweeps one WIRE design parameter under conditions chosen so
the parameter actually binds, and reports cost/makespan:

- first-five boost (§III-C): on Epigenomics, whose per-chunk pipelines
  overlap many stages — early peer completions are what warm the models;
- median vs mean (§III-C): on TPCH-1, whose reducers have Zipf-skewed
  inputs, with noisy runtimes;
- restart threshold 0.2u (§III-D): with perturbed runtimes, so
  predictions miss and boundary releases can kill work;
- OGD learning rate (Algorithm 1's fixed 0.1);
- the lookahead simulation itself (§III-B2) — off degenerates WIRE to an
  instantaneous-load policy;
- clairvoyant prediction (the oracle), bounding what better prediction
  could buy.
"""

from __future__ import annotations

from repro.autoscalers import OracleAutoscaler, WireAutoscaler
from repro.cloud import exogeni_site
from repro.core import WireConfig
from repro.engine import PerturbedRuntimeModel
from repro.engine.simulator import Simulation
from repro.experiments import default_transfer_model
from repro.util.formatting import render_table
from repro.workloads import epigenomics, pagerank, tpch1

DEFAULT_WORKLOADS = {"tpch1-L": tpch1("L"), "pagerank-S": pagerank("S")}


def run_wire(
    config: WireConfig | None = None,
    *,
    workloads=None,
    charging_unit: float = 60.0,
    factory=WireAutoscaler,
    runtime_cv: float = 0.0,
    seed: int = 0,
):
    """Wire runs per workload; returns {workflow: (units, makespan, restarts)}."""
    site = exogeni_site()
    out = {}
    for name, spec in (workloads or DEFAULT_WORKLOADS).items():
        cfg = config or WireConfig()
        sim = Simulation(
            spec.generate(seed),
            site,
            factory(cfg),
            charging_unit,
            transfer_model=default_transfer_model(),
            runtime_model=PerturbedRuntimeModel(cv=runtime_cv),
            boost_k=cfg.boost_k,
            seed=seed,
        )
        result = sim.run()
        out[name] = (result.total_units, result.makespan, result.restarts)
    return out


def _render(name, variants, save_report):
    rows = []
    for label, by_wf in variants.items():
        for wf, (units, makespan, restarts) in by_wf.items():
            rows.append([label, wf, units, f"{makespan:.0f}s", restarts])
    save_report(
        name,
        render_table(
            ["variant", "workflow", "units", "makespan", "restarts"],
            rows,
            title=f"Ablation — {name}",
        ),
    )


def test_ablation_first_k_boost(benchmark, save_report):
    """§III-C: the boost exists to warm predictors early. Epigenomics'
    overlapping per-chunk stages are the scenario it was built for."""
    workloads = {"genome-S": epigenomics("S")}

    def run():
        return {
            f"boost_k={k}": run_wire(
                WireConfig(boost_k=k), workloads=workloads, runtime_cv=0.1
            )
            for k in (0, 5, 50)
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _render("ablation_first_k", variants, save_report)
    assert set(variants) == {"boost_k=0", "boost_k=5", "boost_k=50"}


def test_ablation_median_vs_mean(benchmark, save_report):
    """§III-C: "the median is more effective to capture 'the middle
    performance' of skewed data distributions (e.g., Zipfian)".

    Ablated where the claim lives — prediction accuracy on a stage whose
    runtimes are Zipf-skewed. With a handful of stragglers, the mean
    estimator drags every Policy-3/4 estimate toward the tail while the
    median stays at the typical task.
    """
    import numpy as np

    from repro.core import PredictionPolicy
    from repro.dag import Task
    from repro.experiments import replay_stage_predictions
    from repro.util.rng import spawn_rng

    rng = spawn_rng(0, "ablation-median")
    multiples = np.minimum(rng.zipf(1.8, size=60), 50)
    # Within-group straggler skew: ~10% of peers run 8x long (interference,
    # bad placement) — the MapReduce-straggler regime §III-C targets. The
    # mean estimator absorbs the stragglers into every estimate; the
    # median keeps predicting the typical task.
    straggler = rng.random(60) < 0.1
    tasks = [
        Task(
            f"t{i:03d}",
            "skewed",
            runtime=5.0 * float(m) * (8.0 if straggler[i] else 1.0),
            input_size=100.0 * float(m),
        )
        for i, m in enumerate(multiples)
    ]
    order = list(rng.permutation(len(tasks)))

    def run():
        out = {}
        for label, use_median in (("median", True), ("mean", False)):
            samples = replay_stage_predictions(
                tasks, order, config=WireConfig(use_median=use_median)
            )
            informative = [
                s
                for s in samples
                if s.policy
                in (PredictionPolicy.COMPLETED_UNREADY, PredictionPolicy.MATCHED_GROUP,
                    PredictionPolicy.OGD)
            ]
            mean_abs = float(
                np.mean([abs(s.true_error) for s in informative])
            )
            out[label] = mean_abs
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_median_vs_mean",
        render_table(
            ["estimator", "mean |prediction error| (s)"],
            [[k, f"{v:.2f}"] for k, v in errors.items()],
            title="Ablation — median vs mean on a Zipf-skewed stage",
        ),
    )
    # The paper's design choice must not lose to the mean under skew.
    assert errors["median"] <= errors["mean"] * 1.05


def test_ablation_restart_threshold(benchmark, save_report):
    """§III-D: 0.2u is "arbitrarily chosen ... but freely configurable",
    and §IV-A notes the heuristic's aggressiveness can be modulated "to
    obtain a selected balance of cost and speed". Sweep the threshold on
    the idealized linear stage, where its effect is isolated: a larger
    threshold tolerates longer leftover tasks without an extra instance
    (cheaper, slower); a smaller one buys parallelism for the tail.
    """
    from repro.experiments import simulate_linear_stage

    def run():
        out = {}
        for f in (0.0, 0.2, 0.5, 1.0):
            r = simulate_linear_stage(
                30, 45.0, 60.0, threshold_fraction=f
            )
            out[f"threshold={f}"] = (r.units, r.makespan, r.restarts)
        return out

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_restart_threshold",
        render_table(
            ["variant", "units", "makespan", "restarts"],
            [
                [label, u, f"{m:.0f}s", rs]
                for label, (u, m, rs) in variants.items()
            ],
            title="Ablation — restart/tail threshold on a linear stage "
            "(N=30, R=45s, U=60s)",
        ),
    )
    spans = [m for _, m, _ in variants.values()]
    assert len(set(spans)) > 1, "threshold should modulate the balance"


def test_ablation_learning_rate(benchmark, save_report):
    """Algorithm 1 fixes lr = 0.1; sweep around it. Too-small rates leave
    Policy 5 underfitted (over-provisioning via stale estimates)."""

    def run():
        return {
            f"lr={lr}": run_wire(WireConfig(learning_rate=lr))
            for lr in (0.01, 0.1, 0.5)
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _render("ablation_learning_rate", variants, save_report)
    assert len(variants) == 3


def test_ablation_lookahead(benchmark, save_report):
    """Disabling the §III-B2 workflow simulation degrades WIRE to an
    instantaneous-load policy; the lookahead should never be slower."""

    def run():
        return {
            "lookahead=on": run_wire(WireConfig(lookahead=True)),
            "lookahead=off": run_wire(WireConfig(lookahead=False)),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _render("ablation_lookahead", variants, save_report)
    span_on = sum(m for _, m, _ in variants["lookahead=on"].values())
    span_off = sum(m for _, m, _ in variants["lookahead=off"].values())
    assert span_on <= span_off * 1.05


def test_ablation_oracle_prediction(benchmark, save_report):
    """Upper reference: WIRE with ground-truth runtimes. The gap to wire
    bounds what prediction improvements could buy."""

    def run():
        return {
            "wire": run_wire(),
            "oracle": run_wire(factory=OracleAutoscaler),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _render("ablation_oracle", variants, save_report)
    assert set(variants) == {"wire", "oracle"}
