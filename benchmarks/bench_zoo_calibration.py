"""Zoo calibration fidelity: fitted specs vs. their source traces.

For every vendored WfCommons instance, fit a generative spec
(:mod:`repro.zoo.calibrate`) and check that the fitted model reproduces
the source trace's per-stage statistics — mean runtime and runtime CV —
within 10% relative error per stage (the moment-matching fit is exact up
to float rounding, so the margin is generous). Also verifies that a
realized workflow reproduces the source's stage structure (executables
and task counts per stage), and benchmarks the import + calibrate path.
"""

from __future__ import annotations

import pytest

from repro.util.formatting import render_table
from repro.zoo import calibrate, load_instance, zoo_instance_names

#: per-stage relative-error ceiling on mean runtime and runtime CV
TOLERANCE = 0.10


def test_calibration_fidelity(save_report):
    rows = []
    for name in zoo_instance_names():
        workflow = load_instance(name)
        result = calibrate(workflow, name=f"zoo/{name}")
        for fit in result.stages:
            assert fit.mean_rel_err <= TOLERANCE, (
                f"{name}/{fit.stage_id}: mean runtime off by "
                f"{fit.mean_rel_err:.1%} (> {TOLERANCE:.0%})"
            )
            assert fit.cv_rel_err <= TOLERANCE, (
                f"{name}/{fit.stage_id}: runtime CV off by "
                f"{fit.cv_rel_err:.1%} (> {TOLERANCE:.0%})"
            )
        rows.append(
            [
                name,
                len(workflow),
                len(result.stages),
                f"{result.max_mean_rel_err * 100:.3f}%",
                f"{result.max_cv_rel_err * 100:.3f}%",
            ]
        )
    save_report(
        "zoo_calibration",
        render_table(
            ["instance", "tasks", "stages", "max mean err", "max cv err"],
            rows,
            title=f"zoo calibration fidelity (tolerance {TOLERANCE:.0%}/stage)",
        ),
    )


@pytest.mark.parametrize("name", zoo_instance_names())
def test_realized_structure_matches_source(name):
    """A seed-0 realization has the source's per-stage shape."""
    workflow = load_instance(name)
    generated = calibrate(workflow).spec.generate(0)
    assert [(s.executable, s.size) for s in generated.stages] == [
        (s.executable, s.size) for s in workflow.stages
    ]


def test_import_and_calibrate_speed(benchmark):
    """Importing + calibrating every vendored instance should be cheap."""

    def full_sweep():
        return [calibrate(load_instance(n)) for n in zoo_instance_names()]

    results = benchmark(full_sweep)
    assert len(results) == len(zoo_instance_names())
