#!/usr/bin/env python
"""Fan-out benchmark: per-backend campaign speedup with an absolute floor.

Runs one Fig-5-scale campaign matrix serially, then once per parallel
executor backend (``process``, ``workqueue``) at ``--jobs`` workers, and
reports each backend's wall clock and speedup over serial. Every
parallel store is compared byte-for-byte against the serial store — a
backend that is fast but wrong fails before any speedup number prints.

Modes::

    PYTHONPATH=src python benchmarks/bench_fanout.py --jobs 2
    PYTHONPATH=src python benchmarks/bench_fanout.py --jobs 2 \
        --check --min-speedup 1.2 --out bench-fanout.json

``--check`` exits nonzero when any backend's speedup lands under
``--min-speedup``. The gate is honest about hardware: when the host
exposes fewer visible CPUs than ``--jobs`` workers, the speedup would
measure oversubscription rather than scaling, so the check skips itself
with a GitHub Actions ``::notice`` instead of flaking (the measured
numbers are still printed and written).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cloud.site import exogeni_site  # noqa: E402
from repro.experiments import (  # noqa: E402
    CampaignStore,
    policy_factories,
    run_campaign_parallel,
)
from repro.experiments.executors import (  # noqa: E402
    ExecutorBackend,
    ProcessBackend,
    WorkqueueBackend,
)
from repro.util.formatting import render_table  # noqa: E402
from repro.workloads import table1_specs  # noqa: E402

#: L-scale matrix: big enough cells that fan-out wins over pool overhead
#: (12 cells, roughly a couple of serial seconds on the reference host).
WORKLOADS = ("genome-L", "pagerank-L", "tpch1-L")
POLICIES = ("wire", "pure-reactive")
CHARGING_UNITS = (60.0,)
SEEDS = (0, 1)

BACKENDS = ("process", "workqueue")


def _make_backend(name: str, jobs: int, tmp_dir: Path) -> ExecutorBackend:
    if name == "process":
        return ProcessBackend(jobs=jobs)
    if name == "workqueue":
        return WorkqueueBackend(tmp_dir / f"queue-{name}", jobs=jobs)
    raise ValueError(f"unknown backend {name!r}")


def _run_matrix(
    label: str, jobs: int, backend: ExecutorBackend | None, tmp_dir: Path
) -> tuple[float, bytes]:
    """One full campaign; returns (wall seconds, store bytes)."""
    site = exogeni_site()
    specs = {k: v for k, v in table1_specs().items() if k in WORKLOADS}
    policies = {
        k: v for k, v in policy_factories(site).items() if k in POLICIES
    }
    store_path = tmp_dir / f"fanout_{label}.json"
    store_path.unlink(missing_ok=True)
    start = time.perf_counter()
    _, executed, failed = run_campaign_parallel(
        CampaignStore(store_path),
        specs,
        policies,
        CHARGING_UNITS,
        SEEDS,
        site=site,
        jobs=jobs,
        backend=backend,
    )
    wall = time.perf_counter() - start
    if failed:
        raise RuntimeError(f"campaign cells failed under {label}: {failed}")
    expected = len(specs) * len(policies) * len(CHARGING_UNITS) * len(SEEDS)
    if executed != expected:
        raise RuntimeError(
            f"{label} executed {executed} cells, expected {expected}"
        )
    blob = store_path.read_bytes()
    store_path.unlink(missing_ok=True)
    return wall, blob


def visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def measure(jobs: int, repetitions: int) -> dict:
    """Best-of-``repetitions`` serial and per-backend walls + speedups."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        serial_wall: float | None = None
        serial_blob: bytes | None = None
        for _ in range(repetitions):
            wall, serial_blob = _run_matrix("serial", 1, None, tmp_dir)
            serial_wall = wall if serial_wall is None else min(serial_wall, wall)
        assert serial_wall is not None and serial_blob is not None
        print(f"  serial: {serial_wall:.2f}s")
        backends: dict[str, dict] = {}
        for name in BACKENDS:
            best: float | None = None
            for _ in range(repetitions):
                backend = _make_backend(name, jobs, tmp_dir)
                wall, blob = _run_matrix(name, jobs, backend, tmp_dir)
                if blob != serial_blob:
                    raise RuntimeError(
                        f"{name} store is not byte-identical to serial"
                    )
                best = wall if best is None else min(best, wall)
            assert best is not None
            backends[name] = {
                "wall_s": round(best, 3),
                "parallel_speedup": round(serial_wall / best, 2),
            }
            print(
                f"  {name} (jobs={jobs}): {best:.2f}s  "
                f"{backends[name]['parallel_speedup']:.2f}x  "
                "(store byte-identical to serial)"
            )
    return {
        "jobs": jobs,
        "cpus_visible": visible_cpus(),
        "cells": len(WORKLOADS) * len(POLICIES) * len(CHARGING_UNITS) * len(SEEDS),
        "serial_wall_s": round(serial_wall, 3),
        "backends": backends,
    }


def render(payload: dict) -> str:
    rows = [
        [
            name,
            f"{row['wall_s']:.2f}s",
            f"{row['parallel_speedup']:.2f}x",
        ]
        for name, row in sorted(payload["backends"].items())
    ]
    return render_table(
        ["backend", "wall", "speedup vs serial"],
        [["serial", f"{payload['serial_wall_s']:.2f}s", "1.00x"], *rows],
        title=(
            f"campaign fan-out — {payload['cells']} cells, "
            f"jobs={payload['jobs']}"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2, help="parallel workers")
    parser.add_argument("--repetitions", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when any backend speedup is below --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="absolute speedup floor each backend must clear under --check",
    )
    parser.add_argument("--out", help="write the JSON payload here")
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (a fan-out of one is serial)")

    visible = visible_cpus()
    if args.check and visible < args.jobs:
        # A gate on an oversubscribed host measures queueing, not
        # scaling; say so loudly and pass, instead of flaking.
        msg = (
            f"skipping fan-out speedup gate: {args.jobs} workers requested "
            f"but only {visible} visible CPU(s) on this host"
        )
        print(f"::notice title=bench_fanout::{msg}")
        args.check = False

    payload = measure(args.jobs, args.repetitions)
    print(render(payload))
    if args.out:
        out = Path(args.out)
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", "utf-8")
        print(f"wrote {out}")
    if args.check:
        slow = {
            name: row["parallel_speedup"]
            for name, row in payload["backends"].items()
            if row["parallel_speedup"] < args.min_speedup
        }
        if slow:
            listed = ", ".join(
                f"{name} {speedup:.2f}x" for name, speedup in sorted(slow.items())
            )
            print(
                f"FAIL: backend speedup below {args.min_speedup:.2f}x floor "
                f"at jobs={args.jobs}: {listed}"
            )
            return 1
        print(
            f"PASS: every backend cleared the {args.min_speedup:.2f}x "
            f"speedup floor at jobs={args.jobs}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
