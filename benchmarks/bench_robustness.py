"""§IV-E finding 3: robustness to imperfect prediction, quantified.

Sweeps runtime noise (co-located interference) and injected task faults,
comparing wire's cost advantage over full-site at each degradation level.
The claim reproduces if the advantage survives heavy degradation.
"""

from __future__ import annotations

from repro.experiments.robustness import robustness_experiment
from repro.util.formatting import render_table


def test_robustness(benchmark, save_report):
    rows = benchmark.pedantic(robustness_experiment, rounds=1, iterations=1)
    body = [
        [
            r.workflow,
            f"{r.noise_cv:.1f}",
            f"{r.fault_probability:.2f}",
            r.wire_units,
            r.static_units,
            f"{r.cost_advantage:.2f}x",
            f"{r.slowdown:.2f}x",
            r.wire_restarts,
        ]
        for r in rows
    ]
    save_report(
        "robustness",
        render_table(
            [
                "workflow",
                "noise cv",
                "fault p",
                "wire units",
                "static units",
                "cost advantage",
                "slowdown",
                "restarts",
            ],
            body,
            title="§IV-E — wire vs full-site under degraded prediction",
        ),
    )
    # The cost advantage must survive every degradation level.
    assert all(r.cost_advantage >= 1.0 for r in rows)
    # And remain substantial even at the heaviest level.
    worst = [r for r in rows if r.noise_cv == 0.5 and r.fault_probability > 0]
    assert worst and all(r.cost_advantage >= 1.5 for r in worst)
