"""Figure 4: task-performance prediction accuracy.

Replays every multi-task stage of the Table I workloads under 5 random
task orders through the real predictor and reports per-stage and
per-class error statistics. Paper headline (§IV-D): average error
<= 0.1 s (short) / <= 2.15 s (medium) / <= 13.1% (long); 93.18% of
short-stage and 79.4% of medium-stage tasks within 1 s, 83.19% of
long-stage tasks within 15%.
"""

from __future__ import annotations

from repro.experiments import prediction_experiment
from repro.experiments.report import render_prediction
from repro.metrics import StageClass


def test_fig4_prediction_accuracy(benchmark, save_report):
    results = benchmark.pedantic(
        prediction_experiment, kwargs={"n_orders": 5, "seed": 2}, rounds=1,
        iterations=1,
    )
    save_report("fig4_prediction", render_prediction(results))

    def pooled(cls):
        subset = [r for r in results if r.stage_class is cls]
        total = sum(len(r.errors) for r in subset)
        mean_abs = (
            sum(r.summary.mean_abs_error * len(r.errors) for r in subset) / total
        )
        within = (
            sum(r.summary.within_threshold * len(r.errors) for r in subset) / total
        )
        return mean_abs, within

    short_err, short_within = pooled(StageClass.SHORT)
    medium_err, medium_within = pooled(StageClass.MEDIUM)
    long_err, long_within = pooled(StageClass.LONG)

    # Same accuracy regime as the paper (generous slack for our synthetic
    # skew; exact thresholds in EXPERIMENTS.md).
    assert short_err <= 0.5  # paper: <= 0.1 s
    assert short_within >= 0.90  # paper: 93.18%
    assert medium_err <= 3.0  # paper: <= 2.15 s
    assert medium_within >= 0.60  # paper: 79.4%
    assert long_err <= 0.131  # paper: <= 13.1% relative
    assert long_within >= 0.80  # paper: 83.19%
