"""Provisioning-lag sensitivity: the Figure 6 scale-gap explanation.

Sweeps the lag and reports wire's slowdown vs full-site. Expected: the
slowdown shrinks monotonically as the lag shrinks relative to the
workload (collapsing toward the paper's 1.02x-1.65x u=1min band) —
evidence that the absolute Fig 6 gap is substrate scale, not algorithm
divergence.
"""

from __future__ import annotations

from repro.experiments.sensitivity import lag_sensitivity_experiment
from repro.util.formatting import render_table


def test_lag_sensitivity(benchmark, save_report):
    rows = benchmark.pedantic(lag_sensitivity_experiment, rounds=1, iterations=1)
    body = [
        [
            r.workflow,
            f"{r.lag:.0f}s",
            f"{r.wire_makespan:.0f}s",
            f"{r.static_makespan:.0f}s",
            f"{r.slowdown:.2f}x",
            f"{r.cost_advantage:.2f}x",
        ]
        for r in rows
    ]
    save_report(
        "lag_sensitivity",
        render_table(
            ["workflow", "lag", "wire makespan", "full-site makespan",
             "slowdown", "cost advantage"],
            body,
            title="Lag sensitivity — wire slowdown vs provisioning lag "
            "(u = 1 min)",
        ),
    )
    for wf in {r.workflow for r in rows}:
        series = sorted(
            (r.lag, r.slowdown) for r in rows if r.workflow == wf
        )
        slowdowns = [s for _, s in series]
        # Slowdown grows substantially with lag (small wiggle allowed at
        # the top, where stage waves start aliasing with the tick period).
        assert slowdowns[0] < slowdowns[-1] * 0.9
        # At the shortest lag, wire approaches the paper's u=1min band.
        assert slowdowns[0] < 2.5
