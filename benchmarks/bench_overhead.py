"""§IV-F: WIRE controller overhead.

Measures wall-clock seconds spent inside the MAPE controller relative to
each run's aggregate executed task time, plus the controller's state
footprint. Paper: 0.011%-0.49% of aggregate task time and <= 16 KB of
state across 127 wire runs.
"""

from __future__ import annotations

from repro.experiments import overhead_experiment
from repro.experiments.report import render_overhead


def test_overhead(benchmark, save_report):
    rows = benchmark.pedantic(
        overhead_experiment, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    save_report("overhead", render_overhead(rows))
    for row in rows:
        # Python is slower than the paper's C/Python hybrid; assert the
        # same order of magnitude rather than the exact band.
        assert row.time_overhead_fraction <= 0.02
        assert row.state_bytes <= 16 * 1024
