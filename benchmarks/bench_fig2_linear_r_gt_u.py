"""Figure 2: steering-policy performance on linear stages with R > U.

For N in {10, 100, 1000} and growing R/U, reports the policy's resource
usage and completion time relative to optimal. Expected shape (paper
§IV-A): both ratios bounded (~1.33x cost, ~1.67x time) and approaching
1.0 as R/U reaches 400+.
"""

from __future__ import annotations

from repro.experiments import sweep_r_over_u
from repro.experiments.report import render_linear

RATIOS = [1.5, 2, 5, 10, 40, 100, 400, 1000]


def _run_all():
    return {n: sweep_r_over_u(n, RATIOS) for n in (10, 100, 1000)}


def test_fig2_r_over_u(benchmark, save_report):
    by_n = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    sections = [
        render_linear(results, title=f"Figure 2 — R > U, N = {n}")
        for n, results in by_n.items()
    ]
    save_report("fig2_linear_r_gt_u", "\n\n".join(sections))
    for results in by_n.values():
        # The paper's stated bounds.
        assert all(r.cost_ratio <= 1.40 for r in results)
        assert all(r.time_ratio <= 1.72 for r in results)
        # Approach optimal at the extreme.
        assert results[-1].cost_ratio < 1.05
        assert results[-1].time_ratio < 1.05
