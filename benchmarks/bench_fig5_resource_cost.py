"""Figure 5: resource cost across settings and charging units.

Runs the full §IV-C matrix — every Table I workload under full-site /
pure-reactive / reactive-conserving / wire with u in {1, 15, 30, 60}
minutes — and reports mean +- std charging units. Expected shape: wire
cheapest in (almost) all cells; full-site the ceiling.

The matrix results are cached on the module so the Figure 6 bench reuses
the same runs (as the paper does).
"""

from __future__ import annotations

from conftest import BENCH_REPETITIONS

from repro.experiments import cost_experiment
from repro.experiments.report import render_cost

_CACHE: dict = {}


def full_matrix():
    """Run (or reuse) the complete Fig 5/6 experiment matrix."""
    if "cells" not in _CACHE:
        _CACHE["cells"] = cost_experiment(repetitions=BENCH_REPETITIONS, seed=0)
    return _CACHE["cells"]


def test_fig5_resource_cost(benchmark, save_report):
    cells = benchmark.pedantic(full_matrix, rounds=1, iterations=1)
    save_report("fig5_resource_cost", render_cost(cells))

    # Shape check: per (workflow, u), wire is never costlier than
    # full-site, and is the cheapest policy in the large majority of
    # cells (the paper allows reactive-conserving to win narrowly at
    # u = 1 minute).
    wins = 0
    total = 0
    for workflow in {c.workflow for c in cells}:
        for u in {c.charging_unit for c in cells}:
            row = {
                c.policy: c.summary.mean_units
                for c in cells
                if c.workflow == workflow and c.charging_unit == u
            }
            total += 1
            assert row["wire"] <= row["full-site"] + 1e-9
            if row["wire"] <= min(row.values()) + 1e-9:
                wins += 1
    assert wins / total >= 0.6
