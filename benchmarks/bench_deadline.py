"""Extension: the deadline policy's cost-vs-deadline frontier.

Sweeps the target deadline on one Table I workload and reports charging
units consumed; the frontier should be monotone — slack converts to
savings — with wire and full-site as unconstrained reference points.
"""

from __future__ import annotations

from repro.autoscalers import DeadlineAutoscaler, WireAutoscaler, full_site
from repro.cloud import exogeni_site
from repro.engine import Simulation
from repro.experiments import default_transfer_model
from repro.util.formatting import render_table
from repro.workloads import pagerank


def run_frontier():
    site = exogeni_site()
    spec = pagerank("S")

    def run_one(factory):
        return Simulation(
            spec.generate(0),
            site,
            factory(),
            60.0,
            transfer_model=default_transfer_model(),
            seed=0,
        ).run()

    static = run_one(lambda: full_site(site))
    rows = [("full-site (reference)", static.makespan, static.total_units, True)]
    for multiple in (1.5, 2.5, 4.0, 8.0):
        deadline = static.makespan * multiple
        result = run_one(lambda: DeadlineAutoscaler(deadline))
        rows.append(
            (
                f"deadline {multiple:.1f}x best",
                result.makespan,
                result.total_units,
                result.makespan <= deadline,
            )
        )
    wire = run_one(WireAutoscaler)
    rows.append(("wire (unconstrained)", wire.makespan, wire.total_units, True))
    return rows


def test_deadline_frontier(benchmark, save_report):
    rows = benchmark.pedantic(run_frontier, rounds=1, iterations=1)
    save_report(
        "deadline_frontier",
        render_table(
            ["policy", "makespan", "units", "deadline met"],
            [[name, f"{span:.0f}s", units, met] for name, span, units, met in rows],
            title="Extension — cost vs deadline frontier (PageRank S, u = 1 min)",
        ),
    )
    deadline_rows = rows[1:-1]
    assert all(met for _, _, _, met in deadline_rows), "every deadline must be met"
    units = [u for _, _, u, _ in deadline_rows]
    assert units == sorted(units, reverse=True) or len(set(units)) == 1
