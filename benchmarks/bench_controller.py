"""Controller-only micro-bench: steering cost per MAPE tick.

Times what ``tools/perfbench.py`` gates on — ``controller_us_per_tick``
(one tenant, Fig-5-scale genome-L) and ``fleet_controller_us_per_tick``
(N tenants steered by the global WIRE autoscaler) — in isolation from
engine throughput. Each scenario runs a short warmup pass then keeps the
best of ``ROUNDS`` full runs: the controller numbers on small hosts are
bimodal (frequency scaling), and the best round is the honest measure of
code cost rather than host weather.

``pytest benchmarks/bench_controller.py --smoke`` swaps in S-scale
scenarios and a smaller fleet so the module finishes in seconds.
"""

from __future__ import annotations

from repro.cloud.site import exogeni_site
from repro.experiments import policy_factories, run_setting
from repro.fleet.harness import make_arrivals, run_fleet
from repro.util.formatting import render_table
from repro.workloads import table1_specs

#: full runs per scenario; the reported figure is the best round
ROUNDS = 3

#: (workload, charging unit) single-tenant scenarios under the wire policy
FULL_SCENARIOS = [
    ("genome-L", 60.0),
    ("genome-L", 900.0),
]
SMOKE_SCENARIOS = [
    ("genome-S", 60.0),
]

#: tenants in the fleet variant (bursty arrivals force overlap, so the
#: global autoscaler projects several tenants on most ticks)
FULL_FLEET_TENANTS = 12
SMOKE_FLEET_TENANTS = 4


def measure_single(workload: str, unit: float, rounds: int = ROUNDS) -> dict:
    """Best-of-``rounds`` controller µs/tick for one single-tenant run."""
    site = exogeni_site()
    spec = table1_specs()[workload]
    factory = policy_factories(site)["wire"]
    best = None
    result = None
    for _ in range(rounds):
        result = run_setting(spec, factory, unit, seed=0, site=site)
        us = 1e6 * result.controller_cpu_seconds / max(1, result.ticks)
        best = us if best is None else min(best, us)
    assert result is not None and best is not None
    return {
        "name": f"{workload}/wire/u{unit:.0f}",
        "ticks": result.ticks,
        "controller_us_per_tick": best,
    }


def measure_fleet(tenants: int, rounds: int = ROUNDS) -> dict:
    """Best-of-``rounds`` fleet controller µs/tick (global WIRE steering)."""
    best = None
    result = None
    for _ in range(rounds):
        result = run_fleet(
            arrivals=make_arrivals("bursty", n=tenants, burst_size=3, gap=1200.0),
            charging_unit=900.0,
            seed=0,
        )
        us = 1e6 * result.controller_cpu_seconds / max(1, result.ticks)
        best = us if best is None else min(best, us)
    assert result is not None and best is not None
    return {
        "name": f"fleet/global-wire/{tenants}-tenants",
        "ticks": result.ticks,
        "controller_us_per_tick": best,
    }


def test_controller_tick_cost(benchmark, save_report, smoke):
    scenarios = SMOKE_SCENARIOS if smoke else FULL_SCENARIOS
    tenants = SMOKE_FLEET_TENANTS if smoke else FULL_FLEET_TENANTS

    def run_all():
        rows = [measure_single(workload, unit) for workload, unit in scenarios]
        rows.append(measure_fleet(tenants))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_table(
        ["scenario", "ticks", "controller µs/tick (best)"],
        [
            [r["name"], str(r["ticks"]), f"{r['controller_us_per_tick']:.0f}"]
            for r in rows
        ],
        title="controller tick cost" + (" (smoke)" if smoke else ""),
    )
    save_report("controller" + ("_smoke" if smoke else ""), table)
    for row in rows:
        # Generous ceiling: the seed controller sat near 10k µs/tick on
        # genome-L; anything above 50k means a quadratic crept back in.
        assert row["controller_us_per_tick"] < 50_000, row
