"""Figure 3: steering-policy performance on linear stages with R <= U.

For N in {10, 100, 1000} and growing U/R, reports cost and completion
ratios. Expected shape (paper §IV-A): "the scaling algorithm may deviate
widely from optimal behavior along either metric" — elastic agility is
inherently limited when the charging unit dwarfs task runtimes.
"""

from __future__ import annotations

from repro.experiments import sweep_u_over_r
from repro.experiments.report import render_linear

RATIOS = [1, 2, 5, 10, 100, 1000]


def _run_all():
    return {n: sweep_u_over_r(n, RATIOS) for n in (10, 100, 1000)}


def test_fig3_u_over_r(benchmark, save_report):
    by_n = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    sections = [
        render_linear(results, title=f"Figure 3 — R <= U, N = {n}")
        for n, results in by_n.items()
    ]
    save_report("fig3_linear_r_le_u", "\n\n".join(sections))
    for n, results in by_n.items():
        # Wide deviation at the extremes, unlike Figure 2.
        assert max(r.time_ratio for r in results) > 5.0
        assert max(r.cost_ratio for r in results) > 1.5
