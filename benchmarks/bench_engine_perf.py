"""Engine throughput: events/sec, tasks/sec, controller µs/tick, campaign wall.

The single-run scenarios mirror ``tools/perfbench.py`` (Fig-5-scale "L"
workloads under the wire policy); the campaign benchmark times the same
small matrix serially (``--jobs 1``) and across ``BENCH_JOBS`` worker
processes, asserting the two stores stay byte-identical.

``pytest benchmarks/bench_engine_perf.py --smoke`` swaps in the S-scale
workloads and a 4-cell campaign so the whole module finishes in seconds —
the CI tripwire that the engine still runs and parallel execution still
matches serial.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import BENCH_JOBS

from repro.cloud.site import exogeni_site
from repro.experiments import (
    CampaignStore,
    policy_factories,
    run_campaign_parallel,
    run_setting,
)
from repro.util.formatting import render_table
from repro.workloads import table1_specs

#: (workload, charging unit) single-run scenarios under the wire policy
FULL_SCENARIOS = [
    ("genome-L", 60.0),
    ("genome-L", 900.0),
    ("pagerank-L", 60.0),
    ("tpch1-L", 60.0),
]
SMOKE_SCENARIOS = [
    ("genome-S", 60.0),
    ("tpch6-S", 60.0),
]


def _measure(workload: str, unit: float) -> dict:
    site = exogeni_site()
    factory = policy_factories(site)["wire"]
    start = time.perf_counter()
    result = run_setting(table1_specs()[workload], factory, unit, seed=0, site=site)
    wall = time.perf_counter() - start
    tasks = sum(1 for _ in result.monitor.all_attempts())
    return {
        "name": f"{workload}/wire/u{unit:.0f}",
        "wall_s": wall,
        "events_per_sec": result.events_processed / wall,
        "tasks_per_sec": tasks / wall,
        "controller_us_per_tick": 1e6
        * result.controller_cpu_seconds
        / max(1, result.ticks),
    }


def test_engine_throughput(benchmark, save_report, smoke):
    scenarios = SMOKE_SCENARIOS if smoke else FULL_SCENARIOS

    def run_all():
        return [_measure(workload, unit) for workload, unit in scenarios]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_table(
        ["scenario", "wall (s)", "events/s", "tasks/s", "controller µs/tick"],
        [
            [
                r["name"],
                f"{r['wall_s']:.3f}",
                f"{r['events_per_sec']:.0f}",
                f"{r['tasks_per_sec']:.0f}",
                f"{r['controller_us_per_tick']:.0f}",
            ]
            for r in rows
        ],
        title="engine throughput" + (" (smoke)" if smoke else ""),
    )
    save_report("engine_perf" + ("_smoke" if smoke else ""), table)
    for row in rows:
        # Generous floor: a pure-Python engine on any plausible host
        # clears 1k events/sec; falling below means something is badly
        # wrong (e.g. an accidental O(n^2) in the hot path).
        assert row["events_per_sec"] > 1000, row


def test_campaign_parallel_matches_serial(benchmark, save_report, smoke, tmp_path):
    site = exogeni_site()
    if smoke:
        workload_names = ("tpch1-S", "tpch6-S")
        policy_names = ("wire", "pure-reactive")
        seeds = [0]
    else:
        workload_names = ("tpch1-S", "tpch6-S", "pagerank-S", "genome-S")
        policy_names = ("wire", "pure-reactive")
        seeds = [0, 1]
    specs = {k: v for k, v in table1_specs().items() if k in workload_names}
    units = [60.0]

    def campaign(jobs: int, path: Path) -> float:
        policies = {
            k: v for k, v in policy_factories(site).items() if k in policy_names
        }
        start = time.perf_counter()
        _, _, failed = run_campaign_parallel(
            CampaignStore(path), specs, policies, units, seeds, site=site, jobs=jobs
        )
        assert not failed, failed
        return time.perf_counter() - start

    def run_both():
        serial = campaign(1, tmp_path / "serial.json")
        parallel = campaign(BENCH_JOBS, tmp_path / "parallel.json")
        return serial, parallel

    serial_wall, parallel_wall = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert (tmp_path / "serial.json").read_bytes() == (
        tmp_path / "parallel.json"
    ).read_bytes()
    cells = len(specs) * len(policy_names) * len(units) * len(seeds)
    save_report(
        "engine_perf_campaign" + ("_smoke" if smoke else ""),
        render_table(
            ["jobs", "cells", "wall (s)"],
            [
                ["1", cells, f"{serial_wall:.2f}"],
                [str(BENCH_JOBS), cells, f"{parallel_wall:.2f}"],
            ],
            title="campaign wall-clock (serial vs parallel, byte-identical stores)",
        ),
    )
