"""§I / §II: the motivating observations, measured on the workloads.

Checks that the generated workloads actually exhibit the variability the
paper's design responds to: orders-of-magnitude stage-size spreads,
within-stage skew, strongly varying parallelism width, and cross-run
runtime dispersion.
"""

from __future__ import annotations

from repro.experiments.motivation import motivation_experiment
from repro.util.formatting import render_table


def test_motivation_observations(benchmark, save_report):
    rows = benchmark.pedantic(
        motivation_experiment, kwargs={"runs": 5, "seed": 0}, rounds=1,
        iterations=1,
    )
    body = [
        [
            r.workflow,
            f"{r.stage_size_spread:.0f}x",
            f"{r.stage_mean_spread:.1f}x",
            f"{r.intra_stage_skew:.2f}",
            f"{r.width_peak_over_mean:.1f}x",
            f"{r.cross_run_spread:.2f}x",
        ]
        for r in rows
    ]
    save_report(
        "motivation",
        render_table(
            [
                "workflow",
                "stage size spread",
                "stage mean spread",
                "P90/P50 in-stage",
                "width peak/mean",
                "cross-run spread",
            ],
            body,
            title="§II observations — variability in the generated workloads",
        ),
    )
    by_name = {r.workflow: r for r in rows}
    # Obs. 1: genome stage sizes span three orders of magnitude.
    assert by_name["genome-L"].stage_size_spread >= 1000
    # Obs. 1: parallelism width varies dramatically within every run.
    assert all(r.width_peak_over_mean > 1.3 for r in rows)
    # Obs. 1: within-stage skew exists everywhere.
    assert all(r.intra_stage_skew > 1.0 for r in rows)
    # Obs. 2: the same task's runtime varies across runs.
    assert all(r.cross_run_spread > 1.02 for r in rows)
