"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures and writes
the rendered rows to ``benchmarks/results/<name>.txt`` (also echoed to
stdout) so a ``pytest benchmarks/ --benchmark-only`` run leaves the full
evaluation on disk. Heavy experiments run exactly once per benchmark via
``benchmark.pedantic`` — the interesting output is the table, not the
timing distribution.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: repetitions per (workflow, policy, u) cell; the paper uses 3-7.
BENCH_REPETITIONS = int(os.environ.get("REPRO_BENCH_REPS", "2"))

#: worker processes for campaign-style benchmarks (0 = one per CPU).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="perf smoke mode: bench_engine_perf runs S-scale scenarios "
        "only, finishing well under 30 seconds",
    )


@pytest.fixture
def smoke(request) -> bool:
    """True when the run was invoked with ``--smoke``."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture
def save_report():
    """Write a rendered report to benchmarks/results/ and echo it."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _save
