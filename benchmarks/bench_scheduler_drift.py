"""§III-D's drift claim, quantified.

"The policy controller's predicted assignment of tasks to instances might
differ from the true schedule selected by the framework master. The
experiment results show that the WIRE approach obtains high resource
utilization across the sample workflows ... suggesting that the effect of
any drift from the predicted assignments is minor."

This bench runs wire with the framework dispatching FIFO (the
controller's assumption), LIFO, and uniformly at random, and reports
cost/makespan/utilization per workload. The assertion encodes the claim
as the paper states it — utilization stays healthy and runs stay within a
modest slowdown band under drift. (Cost can move either way: on TPCH-1 L
random dispatch interleaves the Zipf-heavy reducers and actually lands
*cheaper* than the FIFO the controller assumes.)
"""

from __future__ import annotations

from repro.autoscalers import WireAutoscaler
from repro.cloud import exogeni_site
from repro.engine import FifoScheduler, LifoScheduler, RandomScheduler, Simulation
from repro.experiments import default_transfer_model
from repro.util.formatting import render_table
from repro.workloads import epigenomics, tpch1

WORKLOADS = {"genome-S": epigenomics("S"), "tpch1-L": tpch1("L")}
SCHEDULERS = {
    "fifo (assumed)": lambda: FifoScheduler(),
    "lifo": lambda: LifoScheduler(),
    "random": lambda: RandomScheduler(seed=13),
}


def run_matrix():
    out = {}
    for wf_name, spec in WORKLOADS.items():
        for sched_name, factory in SCHEDULERS.items():
            result = Simulation(
                spec.generate(0),
                exogeni_site(),
                WireAutoscaler(),
                60.0,
                transfer_model=default_transfer_model(),
                scheduler=factory(),
                seed=0,
            ).run()
            out[(wf_name, sched_name)] = result
    return out


def test_scheduler_drift(benchmark, save_report):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = [
        [wf, sched, r.total_units, f"{r.makespan:.0f}s", f"{r.utilization:.2f}"]
        for (wf, sched), r in results.items()
    ]
    save_report(
        "scheduler_drift",
        render_table(
            ["workflow", "framework scheduler", "units", "makespan", "utilization"],
            rows,
            title="§III-D — wire under dispatch-order drift "
            "(controller always assumes FIFO)",
        ),
    )
    for wf_name in WORKLOADS:
        spans = [r.makespan for (wf, _), r in results.items() if wf == wf_name]
        utils = [r.utilization for (wf, _), r in results.items() if wf == wf_name]
        assert all(r.completed for r in results.values())
        assert max(spans) / min(spans) <= 1.75, (wf_name, spans)
        assert min(utils) >= 0.25, (wf_name, utils)
