"""Table I: regenerate the workflow characterization.

Prints the paper's Table I columns (stages, task totals, per-stage ranges,
aggregate hours) for every generated workload next to the published
targets, and benchmarks workload generation itself.
"""

from __future__ import annotations

from repro.experiments import table1_experiment
from repro.experiments.report import render_table1
from repro.workloads import table1_specs


def test_table1_characterization(benchmark, save_report):
    rows = benchmark.pedantic(table1_experiment, args=(0,), rounds=1, iterations=1)
    save_report("table1", render_table1(rows))
    assert all(r.counts_match for r in rows)


def test_generation_speed_genome_L(benchmark):
    """Generating the largest workflow (4005 tasks) should be cheap."""
    spec = table1_specs()["genome-L"]
    workflow = benchmark(spec.generate, 0)
    assert len(workflow) == 4005
