#!/usr/bin/env python3
"""Differential-replay invariant fuzzing (CLI wrapper).

Runs seeded scenario grids — every single-workflow prediction policy and
fleet arrival/autoscaler combination, with and without chaos — twice
each: bare, and with a collect-mode invariant checker attached. Fails if
any validated run diverges byte-for-byte from its bare twin or reports
an invariant violation; failing scenarios dump minimal JSON repros.

    PYTHONPATH=src python tools/invariant_fuzz.py --quick --seeds 1
    PYTHONPATH=src python tools/invariant_fuzz.py --seeds 3 --repro-dir /tmp/repros

Equivalent to ``repro validate``. See docs/validation.md.
"""

import sys

from repro.validate.fuzz import main

if __name__ == "__main__":
    sys.exit(main())
