#!/usr/bin/env python3
"""Regenerate or verify tests/engine/golden_engine_results.json.

The golden file pins exact run measurements from the seed engine so that
hot-path optimizations can be verified *bit-identical* (same event
ordering, same FIFO/packing tie-breaks, same float arithmetic). Rewrite
it only when a semantic engine change is intended and reviewed:

    PYTHONPATH=src python tools/gen_golden_engine.py            # rewrite
    PYTHONPATH=src python tools/gen_golden_engine.py --check    # verify
    PYTHONPATH=src python tools/gen_golden_engine.py --check --traced
    PYTHONPATH=src python tools/gen_golden_engine.py --check --no-chaos
    PYTHONPATH=src python tools/gen_golden_engine.py --check --validate

``--check`` re-runs every scenario and exits nonzero on any fingerprint
drift (the CI gate over the full matrix; the unit suite samples a fast
subset). ``--traced`` attaches a telemetry tracer to every run, proving
tracing is pure observation — fingerprints must not move. ``--no-chaos``
passes an all-disabled :class:`~repro.cloud.faults.ChaosSpec` to every
run, proving the disabled chaos path is zero-cost — fingerprints must
not move either. ``--validate`` attaches a collect-mode runtime
invariant checker (:mod:`repro.validate`) to every run: fingerprints
must not move AND every run must report zero violations. ``--diff-out
FILE`` writes an expected-vs-actual JSON report on drift so CI can
upload it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.autoscalers import (
    PureReactiveAutoscaler,
    ReactiveConservingAutoscaler,
    WireAutoscaler,
    full_site,
)
from repro.cloud import exogeni_site
from repro.engine.faults import RandomFaults
from repro.engine.simulator import Simulation
from repro.experiments.harness import default_transfer_model
from repro.workloads import table1_specs

OUT = Path(__file__).resolve().parent.parent / "tests" / "engine" / (
    "golden_engine_results.json"
)


def scenarios(tracer_factory=None, chaos=None, validate_factory=None):
    """Scenario name -> Simulation factory. Covers dispatch packing,
    terminations with occupants (restarts), faults, and launch jitter.

    ``tracer_factory`` attaches a fresh tracer to every simulation (used
    by ``--traced`` to prove telemetry never perturbs results).
    ``chaos`` passes a ChaosSpec to every simulation (used by
    ``--no-chaos`` with a disabled spec to prove the disabled path is
    zero-cost). ``validate_factory`` attaches a fresh invariant checker
    to every simulation (used by ``--validate`` to prove checking is
    pure observation)."""
    site = exogeni_site()
    specs = table1_specs()
    policies = {
        "wire": lambda: WireAutoscaler(),
        "pure-reactive": lambda: PureReactiveAutoscaler(),
        "reactive-conserving": lambda: ReactiveConservingAutoscaler(),
        "full-site": lambda: full_site(site),
    }
    cases = []
    for wf_name in ("genome-S", "tpch6-S", "pagerank-S", "tpch1-S"):
        for policy_name, factory in policies.items():
            for u in (60.0, 900.0):
                for seed in (0, 1):
                    cases.append(
                        (
                            f"{wf_name}/{policy_name}/u{u:.0f}/s{seed}",
                            wf_name,
                            factory,
                            dict(charging_unit=u, seed=seed),
                        )
                    )
    # Fault-injection and launch-jitter variants exercise the kill /
    # requeue / cancellation paths.
    cases.append(
        (
            "genome-S/wire/faults",
            "genome-S",
            policies["wire"],
            dict(
                charging_unit=60.0,
                seed=3,
                fault_model=RandomFaults(probability=0.1, max_attempt=5),
            ),
        )
    )
    cases.append(
        (
            "tpch6-S/wire/jitter",
            "tpch6-S",
            policies["wire"],
            dict(charging_unit=60.0, seed=4, launch_jitter=0.5),
        )
    )

    for name, wf_name, factory, kwargs in cases:
        seed = kwargs.get("seed", 0)
        workflow = specs[wf_name].generate(seed)
        kwargs = dict(kwargs)
        u = kwargs.pop("charging_unit")
        yield name, Simulation(
            workflow,
            site,
            factory(),
            u,
            transfer_model=default_transfer_model(),
            tracer=tracer_factory() if tracer_factory is not None else None,
            chaos=chaos,
            validate=validate_factory() if validate_factory is not None else None,
            **kwargs,
        )


def fingerprint(result) -> dict:
    """Exact (repr-level) measurements of one run."""
    return {
        "makespan": result.makespan.hex(),
        "completed": result.completed,
        "total_units": result.total_units,
        "total_cost": result.total_cost.hex(),
        "wasted_seconds": result.wasted_seconds.hex(),
        "utilization": result.utilization.hex(),
        "peak_instances": result.peak_instances,
        "instances_launched": result.instances_launched,
        "restarts": result.restarts,
        "ticks": result.ticks,
        "pool_timeline_len": len(result.pool_timeline),
        "pool_timeline_tail": [
            [t.hex(), c] for t, c in result.pool_timeline[-5:]
        ],
        "attempts": sum(1 for _ in result.monitor.all_attempts()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify every scenario against the committed golden file "
        "instead of rewriting it",
    )
    parser.add_argument(
        "--traced",
        action="store_true",
        help="attach a telemetry tracer to every run (tracing must not "
        "change a single fingerprint)",
    )
    parser.add_argument(
        "--no-chaos",
        action="store_true",
        help="pass a disabled ChaosSpec to every run (the disabled chaos "
        "path must not change a single fingerprint)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="attach a collect-mode invariant checker to every run "
        "(checking must not change a single fingerprint, and every run "
        "must report zero violations)",
    )
    parser.add_argument(
        "--diff-out",
        metavar="FILE",
        help="on --check failure, write an expected-vs-actual JSON report "
        "of the drifted scenarios here (for CI artifact upload)",
    )
    args = parser.parse_args(argv)

    tracer_factory = None
    if args.traced:
        from repro.telemetry import MemorySink, Tracer

        tracer_factory = lambda: Tracer(MemorySink(maxlen=4096))  # noqa: E731

    chaos = None
    if args.no_chaos:
        from repro.cloud.faults import NO_CHAOS

        chaos = NO_CHAOS

    validate_factory = None
    if args.validate:
        from repro.validate import InvariantChecker

        validate_factory = lambda: InvariantChecker(mode="collect")  # noqa: E731

    payload = {}
    violations = {}
    for name, sim in scenarios(tracer_factory, chaos, validate_factory):
        payload[name] = fingerprint(sim.run())
        if args.validate and sim.validator.violations:
            violations[name] = sim.validator.violations
        if not args.check:
            print(f"  {name}")

    if violations:
        print(f"FAIL: {len(violations)} scenario(s) reported violations:")
        for name, found in violations.items():
            print(f"  {name}:")
            for v in found[:5]:
                print(f"    [{v.invariant}] t={v.time:.3f} {v.message}")
        return 1

    if args.check:
        committed = json.loads(OUT.read_text(encoding="utf-8"))
        drifted = [
            name
            for name in sorted(set(payload) | set(committed))
            if payload.get(name) != committed.get(name)
        ]
        mode = "untraced"
        if args.traced:
            mode = "traced"
        if args.no_chaos:
            mode += "+no-chaos"
        if args.validate:
            mode += "+validated"
        if drifted:
            print(f"FAIL: {len(drifted)} golden scenario(s) drifted ({mode}):")
            for name in drifted:
                print(f"  {name}")
            if args.diff_out:
                report = {
                    "mode": mode,
                    "drifted": {
                        name: {
                            "expected": committed.get(name),
                            "actual": payload.get(name),
                        }
                        for name in drifted
                    },
                }
                Path(args.diff_out).write_text(
                    json.dumps(report, indent=2, sort_keys=True) + "\n", "utf-8"
                )
                print(f"wrote drift report to {args.diff_out}")
            return 1
        print(f"ok: {len(payload)} golden scenarios bit-identical ({mode})")
        return 0

    OUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", "utf-8")
    print(f"wrote {len(payload)} scenarios to {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
