#!/usr/bin/env python3
"""Regenerate the vendored WfCommons instances in ``src/repro/zoo/data/``.

The zoo vendors five small workflow instances whose shapes follow the
published WfCommons/Pegasus applications (Montage, Epigenomics, Cycles,
Seismology, BLAST). Each instance is synthesized from the same
generative family the calibration harness fits — per-stage mean
runtimes, multiplicative lognormal skew, and a size-dependent runtime
component — with fixed seeds, so the files are deterministic and the
calibration bench (``benchmarks/bench_zoo_calibration.py``) exercises a
genuine round trip: trace -> fitted spec -> matching statistics.

Four instances use the flat WfFormat <= 1.3 layout (inline per-task
``files``); BLAST uses the split >= 1.4 layout
(``specification``/``execution``) so both importer paths stay covered.

Run from the repo root::

    python tools/gen_zoo_instances.py
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

DATA_DIR = Path(__file__).resolve().parent.parent / "src" / "repro" / "zoo" / "data"

MiB = float(1 << 20)


@dataclass(frozen=True)
class StageDef:
    """One stage of a synthesized instance."""

    executable: str
    count: int
    mean_exec: float
    cv: float
    mean_input: float
    size_cv: float = 0.3
    size_dependence: float = 0.7
    output_fraction: float = 1.0
    #: dependency pattern to the previous stage:
    #: all / one_to_one / block / pairs
    linkage: str = "all"


@dataclass(frozen=True)
class InstanceDef:
    name: str
    seed: int
    stages: tuple[StageDef, ...]
    layout: str = "flat"  # "flat" (<= 1.3) or "split" (>= 1.4)
    field_order: tuple[str, ...] = field(default=())


def _parent_ids(stage: StageDef, ids: list[str], previous: list[str]) -> list[list[str]]:
    if not previous or stage.linkage == "all":
        return [list(previous)] * stage.count
    if stage.linkage == "pairs":
        # Each task depends on two cyclically-adjacent predecessors —
        # Montage's mDiffFit pattern (one fit per overlapping image pair).
        return [
            sorted({previous[i % len(previous)], previous[(i + 1) % len(previous)]})
            for i in range(stage.count)
        ]
    if stage.linkage == "one_to_one":
        if len(previous) % stage.count != 0:
            raise ValueError(
                f"{stage.executable}: one_to_one needs divisible counts"
            )
        share = len(previous) // stage.count
        return [previous[i * share : (i + 1) * share] for i in range(stage.count)]
    # block: contiguous partition, remainder spread over the front
    share, extra = divmod(len(previous), stage.count)
    sets, cursor = [], 0
    for i in range(stage.count):
        take = share + (1 if i < extra else 0)
        sets.append(previous[cursor : cursor + take])
        cursor += take
    return sets


def _realize(instance: InstanceDef):
    """Realize tasks: ids, parents, sizes, runtimes — the trace content."""
    rng = np.random.default_rng(instance.seed)
    tasks = []
    previous: list[str] = []
    for index, stage in enumerate(instance.stages):
        ids = [f"{stage.executable}_{i:05d}" for i in range(stage.count)]
        if stage.size_cv > 0:
            sigma2 = math.log1p(stage.size_cv**2)
            sizes = stage.mean_input * rng.lognormal(
                mean=-0.5 * sigma2, sigma=math.sqrt(sigma2), size=stage.count
            )
        else:
            sizes = np.full(stage.count, stage.mean_input)
        mean_size = float(sizes.mean())
        scale = (
            1.0
            - stage.size_dependence
            + stage.size_dependence * sizes / mean_size
        )
        if stage.cv > 0:
            sigma2 = math.log1p(stage.cv**2)
            noise = rng.lognormal(
                mean=-0.5 * sigma2, sigma=math.sqrt(sigma2), size=stage.count
            )
        else:
            noise = np.ones(stage.count)
        runtimes = np.maximum(stage.mean_exec * scale * noise, 0.05)
        parents = _parent_ids(stage, ids, previous)
        for i, task_id in enumerate(ids):
            tasks.append(
                {
                    "id": task_id,
                    "executable": stage.executable,
                    "runtime": round(float(runtimes[i]), 3),
                    "input": round(float(sizes[i]), 0),
                    "output": round(float(sizes[i]) * stage.output_fraction, 0),
                    "parents": parents[i],
                }
            )
        previous = ids
    return tasks


def _flat_document(instance: InstanceDef, tasks) -> dict:
    return {
        "name": instance.name,
        "schemaVersion": "1.3",
        "author": {"name": "repro zoo generator", "email": "zoo@localhost"},
        "workflow": {
            "makespanInSeconds": round(sum(t["runtime"] for t in tasks), 3),
            "tasks": [
                {
                    "name": t["id"],
                    "id": t["id"],
                    "category": t["executable"],
                    "type": "compute",
                    "runtimeInSeconds": t["runtime"],
                    "parents": t["parents"],
                    "files": [
                        {
                            "name": f"{t['id']}.in",
                            "link": "input",
                            "sizeInBytes": t["input"],
                        },
                        {
                            "name": f"{t['id']}.out",
                            "link": "output",
                            "sizeInBytes": t["output"],
                        },
                    ],
                }
                for t in tasks
            ],
        },
    }


def _split_document(instance: InstanceDef, tasks) -> dict:
    children: dict[str, list[str]] = {t["id"]: [] for t in tasks}
    for t in tasks:
        for parent in t["parents"]:
            children[parent].append(t["id"])
    files = []
    for t in tasks:
        files.append({"id": f"{t['id']}.in", "sizeInBytes": t["input"]})
        files.append({"id": f"{t['id']}.out", "sizeInBytes": t["output"]})
    return {
        "name": instance.name,
        "schemaVersion": "1.4",
        "author": {"name": "repro zoo generator", "email": "zoo@localhost"},
        "workflow": {
            "specification": {
                "tasks": [
                    {
                        "name": t["id"],
                        "id": t["id"],
                        "category": t["executable"],
                        "parents": t["parents"],
                        "children": children[t["id"]],
                        "inputFiles": [f"{t['id']}.in"],
                        "outputFiles": [f"{t['id']}.out"],
                    }
                    for t in tasks
                ],
                "files": files,
            },
            "execution": {
                "tasks": [
                    {"id": t["id"], "runtimeInSeconds": t["runtime"]}
                    for t in tasks
                ]
            },
        },
    }


INSTANCES = (
    # Montage: the IPAC mosaic pipeline — wide projection fan, pairwise
    # background fits, a narrow model/merge spine, then per-tile cleanup.
    InstanceDef(
        name="montage-small",
        seed=101,
        stages=(
            StageDef("mProject", 12, 14.0, 0.25, 24 * MiB, 0.35, 0.8, 1.6, "all"),
            StageDef("mDiffFit", 24, 4.5, 0.30, 6 * MiB, 0.40, 0.6, 0.4, "pairs"),
            StageDef("mConcatFit", 1, 8.0, 0.10, 2 * MiB, 0.0, 0.3, 1.0, "all"),
            StageDef("mBgModel", 1, 16.0, 0.10, 2 * MiB, 0.0, 0.2, 1.0, "all"),
            StageDef("mBackground", 12, 3.5, 0.25, 30 * MiB, 0.30, 0.7, 1.0, "all"),
            StageDef("mImgtbl", 1, 5.0, 0.10, 3 * MiB, 0.0, 0.3, 1.0, "all"),
            StageDef("mAdd", 1, 24.0, 0.10, 360 * MiB, 0.0, 0.8, 0.5, "all"),
            StageDef("mShrink", 1, 6.5, 0.10, 180 * MiB, 0.0, 0.7, 0.1, "all"),
            StageDef("mJPEG", 1, 2.5, 0.10, 18 * MiB, 0.0, 0.5, 0.2, "all"),
        ),
    ),
    # Epigenomics: the USC DNA-methylation pipeline — split, four
    # per-chunk 1:1 stages, hierarchical merge, index, pileup.
    InstanceDef(
        name="epigenomics-small",
        seed=202,
        stages=(
            StageDef("fastqSplit", 1, 22.0, 0.10, 96 * MiB, 0.0, 0.8, 1.0, "all"),
            StageDef("filterContams", 8, 2.8, 0.20, 12 * MiB, 0.25, 0.7, 0.9, "all"),
            StageDef("sol2sanger", 8, 4.0, 0.20, 11 * MiB, 0.25, 0.7, 1.0, "one_to_one"),
            StageDef("fast2bfq", 8, 5.5, 0.20, 11 * MiB, 0.25, 0.7, 0.5, "one_to_one"),
            StageDef("map", 8, 36.0, 0.30, 5.5 * MiB, 0.25, 0.8, 1.2, "one_to_one"),
            StageDef("mapMerge", 2, 18.0, 0.15, 26 * MiB, 0.10, 0.6, 1.0, "block"),
            StageDef("maqIndex", 1, 12.0, 0.10, 52 * MiB, 0.0, 0.6, 0.6, "all"),
            StageDef("pileup", 1, 15.0, 0.10, 31 * MiB, 0.0, 0.6, 0.3, "all"),
        ),
    ),
    # Cycles: the agroecosystem model — parameter-sweep fan of baseline
    # and fertilizer-increase simulations feeding summary/plot stages.
    InstanceDef(
        name="cycles-small",
        seed=303,
        stages=(
            StageDef("baseline_cycles", 16, 9.0, 0.35, 2 * MiB, 0.45, 0.5, 1.5, "all"),
            StageDef("cycles", 16, 11.0, 0.35, 3 * MiB, 0.45, 0.5, 1.2, "one_to_one"),
            StageDef("fertilizer_increase_output_parser", 16, 2.2, 0.25, 3.6 * MiB, 0.40, 0.5, 0.3, "one_to_one"),
            StageDef("cycles_output_summary", 1, 6.0, 0.10, 17 * MiB, 0.0, 0.6, 0.2, "all"),
            StageDef("cycles_plots", 4, 13.0, 0.20, 3.4 * MiB, 0.15, 0.4, 0.5, "all"),
        ),
    ),
    # Seismology: sG1IterDecon deconvolutions over seismogram pairs,
    # gathered by a single misfit-sifting wrapper.
    InstanceDef(
        name="seismology-small",
        seed=404,
        stages=(
            StageDef("sG1IterDecon", 20, 7.5, 0.40, 1.2 * MiB, 0.55, 0.8, 0.8, "all"),
            StageDef("wrapper_siftSTFByMisfit", 1, 4.0, 0.10, 19 * MiB, 0.0, 0.5, 0.2, "all"),
        ),
    ),
    # BLAST: split the query FASTA, fan out blastall matchers, then two
    # concatenation steps. Split layout: specification + execution.
    InstanceDef(
        name="blast-small",
        seed=505,
        layout="split",
        stages=(
            StageDef("split_fasta", 1, 3.0, 0.10, 8 * MiB, 0.0, 0.5, 1.0, "all"),
            StageDef("blastall", 16, 28.0, 0.30, 0.5 * MiB, 0.35, 0.75, 2.0, "all"),
            StageDef("cat_blast", 1, 2.5, 0.10, 16 * MiB, 0.0, 0.5, 1.0, "all"),
            StageDef("cat", 1, 1.5, 0.10, 16 * MiB, 0.0, 0.5, 1.0, "all"),
        ),
    ),
)


def main() -> int:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for instance in INSTANCES:
        tasks = _realize(instance)
        doc = (
            _split_document(instance, tasks)
            if instance.layout == "split"
            else _flat_document(instance, tasks)
        )
        path = DATA_DIR / f"{instance.name}.json"
        path.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {len(tasks):4d} tasks to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
