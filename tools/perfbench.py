#!/usr/bin/env python
"""Engine performance benchmark / regression gate.

Measures the discrete-event engine on Fig-5-scale (Table I "L")
workloads — events/sec, tasks/sec, controller µs/tick — plus a small
campaign wall-clock comparison at ``--jobs 1`` vs ``--jobs N``, and
writes the results to ``BENCH_engine.json`` at the repo root.

Modes:

    PYTHONPATH=src python tools/perfbench.py            # measure + write
    PYTHONPATH=src python tools/perfbench.py --check    # regression gate

``--check`` re-measures the engine scenarios and exits nonzero if any
scenario's events/sec regressed more than ``--threshold`` (default 30%),
or any controller time (per-scenario ``controller_us_per_tick`` and the
fleet's ``fleet_controller_us_per_tick``) grew more than
``--controller-threshold`` (default 2x), against the committed
``BENCH_engine.json`` — a coarse tripwire for accidentally reverting a
hot-path optimization, deliberately tolerant of machine-to-machine noise.

Two further gates ride on the same threshold:

* fleet throughput at 1/2/4 shards (``fleet_shards``), so the sharded
  K-way merge cannot silently grow per-event overhead; and
* the campaign ``parallel_speedup``, measured per executor backend
  (``process`` and ``workqueue``, each against the same serial
  reference) — *skipped with a GitHub Actions ``::notice`` when the
  host exposes fewer visible CPUs than campaign workers*, because a
  speedup measured on an oversubscribed host reflects queueing, not
  scaling, and gating on it flakes. The absolute ≥1.2x floor at
  ``--jobs 2`` lives in ``benchmarks/bench_fanout.py``, which CI runs
  on a multi-core runner.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_controller import FULL_FLEET_TENANTS, measure_fleet  # noqa: E402

from repro.cloud.site import exogeni_site  # noqa: E402
from repro.experiments import (  # noqa: E402
    CampaignStore,
    policy_factories,
    run_campaign_parallel,
    run_setting,
)
from repro.experiments.executors import (  # noqa: E402
    ExecutorBackend,
    ProcessBackend,
    WorkqueueBackend,
)
from repro.workloads import table1_specs  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_engine.json"

#: Fig-5-scale single-run scenarios: (name, workload, policy, charging unit)
SCENARIOS = [
    ("genome-L/wire/u60", "genome-L", "wire", 60.0),
    ("genome-L/wire/u900", "genome-L", "wire", 900.0),
    ("pagerank-L/wire/u60", "pagerank-L", "wire", 60.0),
    ("tpch1-L/wire/u60", "tpch1-L", "wire", 60.0),
]

#: Seed-engine wall clocks for the scenarios above (min of 3, measured on
#: the pre-overhaul engine at commit 119f502 on this repo's reference
#: container). Event counts are identical by construction — the overhaul
#: is bit-identical — so seed events/sec = events / seed wall.
SEED_WALL_S = {
    "genome-L/wire/u60": 0.4364,
    "genome-L/wire/u900": 0.8910,
    "pagerank-L/wire/u60": 0.0834,
    "tpch1-L/wire/u60": 0.0276,
}

#: Pre-overhaul controller cost (µs per MAPE tick, best of 3) measured on
#: the same reference container immediately before the incremental /
#: vectorized steering rewrite — the "before" column for the controller
#: speedup the rewrite is gated on.
SEED_CONTROLLER_US = {
    "genome-L/wire/u60": 9744.9,
    "genome-L/wire/u900": 10900.7,
}

#: Shard-scaling scenario: one multi-tenant fleet run per shard count.
#: All shard counts replay the identical arrival pattern, so the event
#: counts must match exactly (sharding is bit-identical by construction).
FLEET_SHARD_COUNTS = (1, 2, 4)
FLEET_SHARD_TENANTS = 48

#: Small campaign matrix for the jobs=1 vs jobs=N wall-clock comparison.
CAMPAIGN_WORKLOADS = ("tpch1-S", "tpch6-S", "pagerank-S", "genome-S")
CAMPAIGN_POLICIES = ("wire", "pure-reactive")
CAMPAIGN_UNITS = (60.0,)
CAMPAIGN_SEEDS = (0, 1)

#: Parallel executor backends the campaign comparison measures, each
#: against the same serial reference wall clock.
CAMPAIGN_BACKENDS = ("process", "workqueue")


def campaign_backend(name: str, jobs: int, tmp_dir: Path) -> ExecutorBackend:
    """One measurable backend instance (its scratch state under ``tmp_dir``)."""
    if name == "process":
        return ProcessBackend(jobs=jobs)
    if name == "workqueue":
        return WorkqueueBackend(tmp_dir / f"queue-{name}", jobs=jobs)
    raise ValueError(f"unknown campaign backend {name!r}")


def measure_scenarios(repetitions: int = 3) -> dict[str, dict]:
    """Run each scenario ``repetitions`` times; keep the fastest wall."""
    site = exogeni_site()
    specs = table1_specs()
    factories = policy_factories(site)
    out: dict[str, dict] = {}
    for name, workload, policy, unit in SCENARIOS:
        best = None
        best_ctl = None
        result = None
        for _ in range(repetitions):
            start = time.perf_counter()
            result = run_setting(
                specs[workload], factories[policy], unit, seed=0, site=site
            )
            wall = time.perf_counter() - start
            best = wall if best is None else min(best, wall)
            ctl = 1e6 * result.controller_cpu_seconds / max(1, result.ticks)
            best_ctl = ctl if best_ctl is None else min(best_ctl, ctl)
        assert result is not None and best is not None and best_ctl is not None
        tasks = sum(1 for _ in result.monitor.all_attempts())
        out[name] = {
            "wall_s": round(best, 6),
            "events": result.events_processed,
            "tasks": tasks,
            "ticks": result.ticks,
            "events_per_sec": round(result.events_processed / best, 1),
            "tasks_per_sec": round(tasks / best, 1),
            "controller_us_per_tick": round(best_ctl, 1),
        }
        print(
            f"  {name}: {best:.3f}s  "
            f"{out[name]['events_per_sec']:.0f} ev/s  "
            f"{out[name]['controller_us_per_tick']:.0f} us/tick"
        )
    return out


def measure_campaign(jobs: int, tmp_dir: Path) -> dict:
    """Wall-clock one small campaign: serial, then each parallel backend.

    The serial run is the reference; at ``jobs > 1`` every backend in
    :data:`CAMPAIGN_BACKENDS` runs the same matrix at ``jobs`` workers
    and records its own ``parallel_speedup`` under ``backends``. The
    flat ``jobs1_wall_s`` / ``jobs{N}_wall_s`` keys (the latter the
    process backend's wall) keep the record's historical shape.
    """
    site = exogeni_site()
    specs = {k: v for k, v in table1_specs().items() if k in CAMPAIGN_WORKLOADS}

    def one_run(label: str, n: int, backend: ExecutorBackend | None) -> float:
        store_path = tmp_dir / f"perfbench_campaign_{label}.json"
        store_path.unlink(missing_ok=True)
        policies = {
            k: v for k, v in policy_factories(site).items() if k in CAMPAIGN_POLICIES
        }
        start = time.perf_counter()
        _, executed, failed = run_campaign_parallel(
            CampaignStore(store_path),
            specs,
            policies,
            CAMPAIGN_UNITS,
            CAMPAIGN_SEEDS,
            site=site,
            jobs=n,
            backend=backend,
        )
        wall = time.perf_counter() - start
        store_path.unlink(missing_ok=True)
        if failed:
            raise RuntimeError(f"campaign cells failed: {failed}")
        print(f"  campaign ({executed} cells, {label}): {wall:.2f}s")
        return round(wall, 3)

    out: dict = {"jobs1_wall_s": one_run("jobs1", 1, None)}
    if jobs != 1:
        backends: dict[str, dict] = {}
        for name in CAMPAIGN_BACKENDS:
            wall = one_run(f"{name}-j{jobs}", jobs, campaign_backend(name, jobs, tmp_dir))
            backends[name] = {
                "wall_s": wall,
                "parallel_speedup": round(out["jobs1_wall_s"] / wall, 2),
            }
        out[f"jobs{jobs}_wall_s"] = backends["process"]["wall_s"]
        out["backends"] = backends
    return out


def host_info(jobs: int) -> dict:
    """Honest host facts, so BENCH numbers are interpretable.

    ``cpus`` is the machine's logical CPU count; ``cpus_visible`` is what
    this process may actually use (CPU affinity / container quota). When
    the campaign ran more workers than visible CPUs, the parallel-speedup
    figure measures oversubscription, not scaling — say so in the record
    instead of leaving a mysterious sub-1.0 speedup behind.
    """
    cpus = os.cpu_count() or 1
    try:
        visible = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        visible = cpus
    info: dict = {"cpus": cpus, "cpus_visible": visible, "campaign_jobs": jobs}
    if jobs > visible:
        info["warning"] = (
            f"campaign ran {jobs} workers on {visible} visible CPUs; "
            "parallel_speedup reflects oversubscription, not scaling"
        )
    return info


def measure_fleet_controller(repetitions: int) -> dict:
    """Best-of-``repetitions`` global-steering cost for the fleet bench."""
    row = measure_fleet(FULL_FLEET_TENANTS, rounds=repetitions)
    out = {
        "tenants": FULL_FLEET_TENANTS,
        "ticks": row["ticks"],
        "fleet_controller_us_per_tick": round(row["controller_us_per_tick"], 1),
    }
    print(
        f"  {row['name']}: "
        f"{out['fleet_controller_us_per_tick']:.0f} us/tick"
    )
    return out


def measure_fleet_shards(repetitions: int) -> dict:
    """Fleet engine throughput at each of ``FLEET_SHARD_COUNTS`` shards.

    Sharding is a determinism/architecture feature, not a parallelism
    one — every shard runs on the driving thread — so the interesting
    number is how much per-event overhead the K-way merge adds, and the
    gate trips when that overhead grows, not when speedup shrinks.
    """
    from repro.fleet import make_arrivals, run_fleet

    per_shards: dict[str, float] = {}
    events: int | None = None
    for shards in FLEET_SHARD_COUNTS:
        best = None
        result = None
        for _ in range(repetitions):
            arrivals = make_arrivals(
                "poisson", rate=12.0, n=FLEET_SHARD_TENANTS
            )
            start = time.perf_counter()
            result = run_fleet(
                arrivals=arrivals, charging_unit=900.0, seed=0, shards=shards
            )
            wall = time.perf_counter() - start
            best = wall if best is None else min(best, wall)
        assert result is not None and best is not None
        if events is None:
            events = result.events_processed
        elif events != result.events_processed:
            raise RuntimeError(
                f"sharded fleet drifted: shards={shards} processed "
                f"{result.events_processed} events, unsharded {events}"
            )
        key = f"shards{shards}"
        per_shards[key] = round(result.events_processed / best, 1)
        print(f"  fleet {key}: {per_shards[key]:.0f} ev/s")
    return {
        "tenants": FLEET_SHARD_TENANTS,
        "events": events,
        "events_per_sec_by_shards": per_shards,
    }


def run_measure(jobs: int, repetitions: int) -> dict:
    import tempfile

    print("engine scenarios:")
    engine = measure_scenarios(repetitions)
    print("fleet controller:")
    fleet = measure_fleet_controller(repetitions)
    print("fleet shard scaling:")
    fleet_shards = measure_fleet_shards(repetitions)
    print("campaign:")
    with tempfile.TemporaryDirectory() as tmp:
        campaign = measure_campaign(jobs, Path(tmp))
    speedups = {
        name: round(SEED_WALL_S[name] / engine[name]["wall_s"], 2)
        for name in SEED_WALL_S
        if name in engine
    }
    ctl_speedups = {
        name: round(
            SEED_CONTROLLER_US[name] / engine[name]["controller_us_per_tick"], 2
        )
        for name in SEED_CONTROLLER_US
        if name in engine
    }
    jobs_key = f"jobs{jobs}_wall_s"
    payload = {
        "host": host_info(jobs),
        "engine": engine,
        "fleet": fleet,
        "fleet_shards": fleet_shards,
        "seed_baseline_wall_s": SEED_WALL_S,
        "seed_controller_us_per_tick": SEED_CONTROLLER_US,
        "speedup_vs_seed": speedups,
        "controller_speedup_vs_seed": ctl_speedups,
        "campaign": {
            "jobs": jobs,
            **campaign,
            "parallel_speedup": (
                round(campaign["jobs1_wall_s"] / campaign[jobs_key], 2)
                if jobs_key in campaign and jobs != 1
                else 1.0
            ),
        },
    }
    return payload


def run_check(
    jobs: int, repetitions: int, threshold: float, ctl_threshold: float = 1.0
) -> int:
    if not BENCH_PATH.exists():
        print(f"no committed baseline at {BENCH_PATH}; run without --check first")
        return 2
    committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    baseline = committed["engine"]
    print("engine scenarios:")
    current = measure_scenarios(repetitions)
    failures = []
    for name, measured in current.items():
        if name not in baseline:
            continue
        base_eps = baseline[name]["events_per_sec"]
        now_eps = measured["events_per_sec"]
        ratio = now_eps / base_eps
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSED"
        print(f"  {name}: {now_eps:.0f} ev/s vs baseline {base_eps:.0f} ({ratio:.2f}x) {status}")
        if ratio < 1.0 - threshold:
            failures.append(name)
        # Controller gate: a generous multiple, because controller time
        # is far noisier than whole-run wall clock on shared hosts — the
        # tripwire is for reintroducing a per-tick quadratic (a 4-10x
        # jump), not for host weather.
        base_ctl = baseline[name].get("controller_us_per_tick")
        if base_ctl:
            now_ctl = measured["controller_us_per_tick"]
            cratio = now_ctl / base_ctl
            cstatus = "ok" if cratio <= 1.0 + ctl_threshold else "REGRESSED"
            print(
                f"  {name}: controller {now_ctl:.0f} us/tick vs baseline "
                f"{base_ctl:.0f} ({cratio:.2f}x) {cstatus}"
            )
            if cratio > 1.0 + ctl_threshold:
                failures.append(f"{name} (controller)")
    base_fleet = committed.get("fleet", {}).get("fleet_controller_us_per_tick")
    if base_fleet:
        print("fleet controller:")
        now_fleet = measure_fleet_controller(repetitions)[
            "fleet_controller_us_per_tick"
        ]
        fratio = now_fleet / base_fleet
        fstatus = "ok" if fratio <= 1.0 + ctl_threshold else "REGRESSED"
        print(
            f"  fleet: {now_fleet:.0f} us/tick vs baseline {base_fleet:.0f} "
            f"({fratio:.2f}x) {fstatus}"
        )
        if fratio > 1.0 + ctl_threshold:
            failures.append("fleet (controller)")
    base_shards = committed.get("fleet_shards", {}).get("events_per_sec_by_shards")
    if base_shards:
        print("fleet shard scaling:")
        now_shards = measure_fleet_shards(repetitions)["events_per_sec_by_shards"]
        for key in sorted(base_shards):
            if key not in now_shards:
                continue
            sratio = now_shards[key] / base_shards[key]
            sstatus = "ok" if sratio >= 1.0 - threshold else "REGRESSED"
            print(
                f"  fleet {key}: {now_shards[key]:.0f} ev/s vs baseline "
                f"{base_shards[key]:.0f} ({sratio:.2f}x) {sstatus}"
            )
            if sratio < 1.0 - threshold:
                failures.append(f"fleet ({key})")
    base_campaign = committed.get("campaign", {})
    base_speedup = base_campaign.get("parallel_speedup")
    bench_jobs = int(base_campaign.get("jobs", jobs))
    # Per-backend baselines, where the committed record has them; an old
    # record gates only the top-level (process) figure.
    backend_baselines = {
        name: row["parallel_speedup"]
        for name, row in base_campaign.get("backends", {}).items()
        if row.get("parallel_speedup", 0) > 1.0
    }
    if not backend_baselines and base_speedup and base_speedup > 1.0:
        backend_baselines = {"process": base_speedup}
    if backend_baselines and bench_jobs > 1:
        # Compare at the baseline's worker count — a speedup at jobs=4
        # against a baseline at jobs=2 gates nothing meaningful.
        visible = host_info(bench_jobs)["cpus_visible"]
        if visible < bench_jobs:
            msg = (
                f"skipping parallel_speedup gate: baseline used "
                f"{bench_jobs} campaign workers but this host exposes only "
                f"{visible} visible CPUs — the measurement would reflect "
                "oversubscription, not scaling"
            )
            print(f"::notice title=perfbench::{msg}")
            print(f"  campaign: {msg}")
        else:
            import tempfile

            print("campaign:")
            with tempfile.TemporaryDirectory() as tmp:
                campaign = measure_campaign(bench_jobs, Path(tmp))
            measured = {
                name: row["parallel_speedup"]
                for name, row in campaign.get("backends", {}).items()
            }
            for name, base in sorted(backend_baselines.items()):
                if name not in measured:
                    continue
                pratio = measured[name] / base
                pstatus = "ok" if pratio >= 1.0 - threshold else "REGRESSED"
                print(
                    f"  campaign[{name}]: parallel_speedup "
                    f"{measured[name]:.2f}x vs baseline {base:.2f}x "
                    f"({pratio:.2f}x) {pstatus}"
                )
                if pratio < 1.0 - threshold:
                    failures.append(f"campaign ({name} parallel_speedup)")
    if failures:
        print(f"FAIL: perf regressed beyond thresholds on: {', '.join(failures)}")
        return 1
    print("PASS: no perf regression beyond thresholds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_engine.json instead of rewriting it",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the campaign comparison",
    )
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="--check fails when events/sec drops more than this fraction",
    )
    parser.add_argument(
        "--controller-threshold",
        type=float,
        default=1.0,
        help="--check fails when controller us/tick grows more than this "
        "fraction (default 1.0 = 2x, tolerant of host noise)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_PATH), help="output path (measure mode)"
    )
    args = parser.parse_args(argv)
    if args.check:
        return run_check(
            args.jobs, args.repetitions, args.threshold, args.controller_threshold
        )
    payload = run_measure(args.jobs, args.repetitions)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", "utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
